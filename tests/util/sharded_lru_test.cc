// Copyright (c) 2026 moqo authors. MIT license.
//
// ShardedLru unit tests: the container mechanics shared by PlanCache and
// SubplanMemo, including the policy hooks (lookup admission, replace
// gating) the owners build their semantics on. PlanCache/SubplanMemo
// tests cover the owner-level behaviour; these pin the template itself.

#include "util/sharded_lru.h"

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace moqo {
namespace {

/// Minimal key satisfying the container's requirements.
struct TestKey {
  std::string key;
  uint64_t hash = 0;
  bool operator==(const TestKey& other) const {
    return hash == other.hash && key == other.key;
  }
};

TestKey Key(const std::string& text) {
  TestKey key;
  key.key = text;
  uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  key.hash = hash;
  return key;
}

using Lru = ShardedLru<TestKey, std::shared_ptr<const int>>;

Lru::Options SingleShard(size_t capacity, size_t capacity_bytes = 0) {
  Lru::Options options;
  options.capacity = capacity;
  options.capacity_bytes = capacity_bytes;
  options.shards = 1;
  return options;
}

std::shared_ptr<const int> Value(int v) { return std::make_shared<int>(v); }

TEST(ShardedLruTest, LruEvictionOrderAndCounters) {
  Lru lru(SingleShard(2));
  lru.Insert(Key("a"), Value(1), 10, 1);
  lru.Insert(Key("b"), Value(2), 10, 1);
  ASSERT_NE(lru.Lookup(Key("a")), nullptr);  // a most recent.
  lru.Insert(Key("c"), Value(3), 10, 1);     // Evicts b.

  EXPECT_NE(lru.Lookup(Key("a")), nullptr);
  EXPECT_EQ(lru.Lookup(Key("b")), nullptr);
  EXPECT_NE(lru.Lookup(Key("c")), nullptr);
  const Lru::Counters counters = lru.GetCounters();
  EXPECT_EQ(counters.evictions, 1u);
  EXPECT_EQ(counters.entries, 2u);
  EXPECT_EQ(counters.bytes, 20u);
  EXPECT_EQ(counters.weight, 2u);
  EXPECT_EQ(counters.hits, 3u);
  EXPECT_EQ(counters.misses, 1u);
}

TEST(ShardedLruTest, ByteBudgetIsPrimaryLimit) {
  Lru lru(SingleShard(/*capacity=*/100, /*capacity_bytes=*/25));
  lru.Insert(Key("a"), Value(1), 10, 0);
  lru.Insert(Key("b"), Value(2), 10, 0);
  EXPECT_EQ(lru.GetCounters().evictions, 0u);
  lru.Insert(Key("c"), Value(3), 10, 0);  // 30 > 25: evicts LRU (a).
  EXPECT_EQ(lru.Lookup(Key("a")), nullptr);
  EXPECT_NE(lru.Lookup(Key("b")), nullptr);
  EXPECT_LE(lru.GetCounters().bytes, 25u);

  // An entry larger than the whole budget empties the shard but is
  // stored anyway.
  lru.Insert(Key("big"), Value(4), 100, 0);
  EXPECT_NE(lru.Lookup(Key("big")), nullptr);
  EXPECT_EQ(lru.GetCounters().entries, 1u);
}

TEST(ShardedLruTest, LookupAdmissionHookRefusesWithoutPromoting) {
  Lru lru(SingleShard(2));
  lru.Insert(Key("a"), Value(1), 1, 0);
  lru.Insert(Key("b"), Value(2), 1, 0);

  // Refused lookups are misses and must NOT refresh recency: "a" stays
  // least recently used and is the next eviction victim.
  const auto refuse = [](const std::shared_ptr<const int>&) { return false; };
  EXPECT_EQ(lru.LookupIf(Key("a"), refuse), nullptr);
  lru.Insert(Key("c"), Value(3), 1, 0);
  EXPECT_EQ(lru.Lookup(Key("a")), nullptr);  // Evicted despite the probe.
  EXPECT_NE(lru.Lookup(Key("b")), nullptr);

  const Lru::Counters counters = lru.GetCounters();
  EXPECT_EQ(counters.misses, 2u);  // Refused probe + the post-evict miss.
}

TEST(ShardedLruTest, ReplaceHookGatesRefreshButAlwaysTouches) {
  Lru lru(SingleShard(2));
  lru.Insert(Key("a"), Value(1), 5, 1);
  lru.Insert(Key("b"), Value(2), 5, 1);

  // Rejected replace: value and accounting stay, recency refreshes.
  const bool replaced = lru.InsertIf(
      Key("a"), Value(10), 50, 9,
      [](const std::shared_ptr<const int>&) { return false; });
  EXPECT_FALSE(replaced);
  auto hit = lru.Lookup(Key("a"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 1);
  EXPECT_EQ(lru.GetCounters().bytes, 10u);
  // "a" was touched by the refused insert AND the lookup; "b" is LRU now.
  lru.Insert(Key("c"), Value(3), 5, 1);
  EXPECT_EQ(lru.Lookup(Key("b")), nullptr);

  // Accepted replace swaps value and re-accounts bytes/weight.
  lru.InsertIf(Key("a"), Value(20), 7, 3,
               [](const std::shared_ptr<const int>&) { return true; });
  hit = lru.Lookup(Key("a"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 20);
  const Lru::Counters counters = lru.GetCounters();
  EXPECT_EQ(counters.bytes, 12u);   // 7 (a) + 5 (c).
  EXPECT_EQ(counters.weight, 4u);   // 3 (a) + 1 (c).
}

TEST(ShardedLruTest, GrownRefreshShedsColdEntriesButKeepsItself) {
  Lru lru(SingleShard(/*capacity=*/100, /*capacity_bytes=*/25));
  lru.Insert(Key("a"), Value(1), 10, 0);
  lru.Insert(Key("b"), Value(2), 10, 0);
  // Refreshing b to 24 bytes busts the budget: a is shed, b survives.
  lru.Insert(Key("b"), Value(3), 24, 0);
  EXPECT_EQ(lru.Lookup(Key("a")), nullptr);
  auto hit = lru.Lookup(Key("b"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 3);
}

TEST(ShardedLruTest, ShardCountRoundsToPowerOfTwo) {
  Lru::Options options;
  options.shards = 5;
  Lru lru(options);
  EXPECT_EQ(lru.num_shards(), 8);
}

TEST(ShardedLruTest, ReclassifyMissAsHitBalancesCounters) {
  Lru lru(SingleShard(4));
  EXPECT_EQ(lru.Lookup(Key("a")), nullptr);  // Miss.
  lru.Insert(Key("a"), Value(1), 1, 0);
  // The race-closing re-probe pattern: uncounted lookup, then flip the
  // recorded miss.
  EXPECT_NE(lru.Lookup(Key("a"), /*record_stats=*/false), nullptr);
  lru.ReclassifyMissAsHit();
  const Lru::Counters counters = lru.GetCounters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 0u);
}

TEST(ShardedLruTest, EvictionHookSeesVictimsColdestFirst) {
  Lru lru(SingleShard(3));
  std::vector<std::pair<std::string, size_t>> demoted;
  lru.SetEvictionHook(
      [&demoted](const TestKey& key, const std::shared_ptr<const int>& value,
                 size_t bytes) {
        EXPECT_NE(value, nullptr);
        demoted.emplace_back(key.key, bytes);
      });

  lru.Insert(Key("a"), Value(1), 11, 0);
  lru.Insert(Key("b"), Value(2), 12, 0);
  lru.Insert(Key("c"), Value(3), 13, 0);
  ASSERT_NE(lru.Lookup(Key("a")), nullptr);  // Recency now a > c > b.
  EXPECT_TRUE(demoted.empty());              // No eviction yet.

  // Two inserts over the entry cap evict b then c; the hook must see
  // them coldest-first with the bytes each entry was accounted at.
  lru.Insert(Key("d"), Value(4), 30, 0);  // Over capacity: evicts b.
  lru.Insert(Key("e"), Value(5), 30, 0);  // Evicts c.
  ASSERT_EQ(demoted.size(), 2u);
  EXPECT_EQ(demoted[0], (std::pair<std::string, size_t>{"b", 12}));
  EXPECT_EQ(demoted[1], (std::pair<std::string, size_t>{"c", 13}));
}

TEST(ShardedLruTest, EvictionHookByteSqueezeDeliversAllVictimsInOrder) {
  // A single oversized insert that evicts several entries at once must
  // deliver every victim, still coldest-first.
  Lru lru(SingleShard(/*capacity=*/100, /*capacity_bytes=*/30));
  std::vector<std::string> demoted;
  lru.SetEvictionHook([&demoted](const TestKey& key,
                                 const std::shared_ptr<const int>&,
                                 size_t) { demoted.push_back(key.key); });
  lru.Insert(Key("a"), Value(1), 10, 0);
  lru.Insert(Key("b"), Value(2), 10, 0);
  lru.Insert(Key("c"), Value(3), 10, 0);
  lru.Insert(Key("big"), Value(4), 30, 0);  // Evicts a, b, c.
  EXPECT_EQ(demoted, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(lru.GetCounters().entries, 1u);
}

TEST(ShardedLruTest, EvictionHookMayReenterContainer) {
  // The hook runs after the shard lock is released, so a hook that
  // re-inserts (the disk tier's promote path does exactly this through
  // the owner) must not deadlock — even when that insert evicts again.
  Lru lru(SingleShard(2));
  int reentries = 0;
  lru.SetEvictionHook([&](const TestKey& key,
                          const std::shared_ptr<const int>& value, size_t) {
    if (++reentries <= 1) {
      lru.Insert(Key(key.key + "-redo"), value, 1, 0);
    }
  });
  lru.Insert(Key("a"), Value(1), 1, 0);
  lru.Insert(Key("b"), Value(2), 1, 0);
  lru.Insert(Key("c"), Value(3), 1, 0);  // Evicts a; hook inserts a-redo.
  EXPECT_GE(reentries, 1);
  EXPECT_EQ(lru.GetCounters().entries, 2u);
}

TEST(ShardedLruTest, ClearDoesNotFireEvictionHook) {
  // Clear() is invalidation (epoch flush), not cache pressure: flushed
  // entries are stale by definition and must never be demoted to disk.
  Lru lru(SingleShard(4));
  int hook_calls = 0;
  lru.SetEvictionHook([&hook_calls](const TestKey&,
                                    const std::shared_ptr<const int>&,
                                    size_t) { ++hook_calls; });
  lru.Insert(Key("a"), Value(1), 1, 0);
  lru.Insert(Key("b"), Value(2), 1, 0);
  lru.Clear();
  EXPECT_EQ(hook_calls, 0);
  EXPECT_EQ(lru.GetCounters().entries, 0u);
}

TEST(ShardedLruTest, ForEachVisitsEveryResidentEntryWithBytes) {
  Lru lru(SingleShard(4));
  lru.Insert(Key("a"), Value(1), 11, 0);
  lru.Insert(Key("b"), Value(2), 12, 0);
  ASSERT_NE(lru.Lookup(Key("a")), nullptr);  // a most recent.
  std::vector<std::pair<std::string, size_t>> seen;
  lru.ForEach([&seen](const TestKey& key,
                      const std::shared_ptr<const int>& value, size_t bytes) {
    ASSERT_NE(value, nullptr);
    seen.emplace_back(key.key, bytes);
  });
  // MRU→LRU within the shard: a (just touched) before b.
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<std::string, size_t>{"a", 11}));
  EXPECT_EQ(seen[1], (std::pair<std::string, size_t>{"b", 12}));
}

TEST(ShardedLruTest, ConcurrentMixedTraffic) {
  Lru::Options options;
  options.capacity = 64;
  options.shards = 8;
  Lru lru(options);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&lru, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "key" + std::to_string((t * 7 + i) % 100);
        if (i % 3 == 0) {
          lru.Insert(Key(key), Value(i), 8, 1);
        } else {
          auto hit = lru.Lookup(Key(key));
          if (hit != nullptr) {
            volatile int v = *hit;  // TSan: unsynchronized access check.
            (void)v;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const int lookups_per_thread = kOpsPerThread - (kOpsPerThread + 2) / 3;
  const Lru::Counters counters = lru.GetCounters();
  EXPECT_EQ(counters.hits + counters.misses,
            static_cast<uint64_t>(kThreads) * lookups_per_thread);
  EXPECT_LE(counters.entries, 64u + 8u);  // Capacity rounding headroom.
}

}  // namespace
}  // namespace moqo
