// Tests for the bump allocator backing plan-node storage.

#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace moqo {
namespace {

TEST(ArenaTest, StartsEmpty) {
  Arena arena;
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  EXPECT_EQ(arena.reserved_bytes(), 0u);
}

TEST(ArenaTest, AllocationsAreDisjointAndWritable) {
  Arena arena;
  std::vector<char*> chunks;
  for (int i = 0; i < 100; ++i) {
    char* chunk = static_cast<char*>(arena.Allocate(64));
    std::memset(chunk, i, 64);
    chunks.push_back(chunk);
  }
  // Earlier writes must survive later allocations.
  for (int i = 0; i < 100; ++i) {
    for (int b = 0; b < 64; ++b) {
      ASSERT_EQ(chunks[i][b], static_cast<char>(i));
    }
  }
  EXPECT_EQ(arena.allocated_bytes(), 6400u);
}

TEST(ArenaTest, RespectsAlignment) {
  Arena arena;
  arena.Allocate(1, 1);
  void* p16 = arena.Allocate(8, 16);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p16) % 16, 0u);
  arena.Allocate(3, 1);
  void* p64 = arena.Allocate(8, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p64) % 64, 0u);
}

TEST(ArenaTest, LargeAllocationGetsOwnBlock) {
  Arena arena(/*block_bytes=*/1024);
  void* big = arena.Allocate(10000);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xab, 10000);
  EXPECT_GE(arena.reserved_bytes(), 10000u);
}

TEST(ArenaTest, NewConstructsObjects) {
  struct Node {
    int a;
    double b;
  };
  Arena arena;
  Node* node = arena.New<Node>(Node{7, 2.5});
  EXPECT_EQ(node->a, 7);
  EXPECT_DOUBLE_EQ(node->b, 2.5);
}

TEST(ArenaTest, ResetReleasesEverything) {
  Arena arena;
  arena.Allocate(1000);
  EXPECT_GT(arena.reserved_bytes(), 0u);
  arena.Reset();
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  EXPECT_EQ(arena.reserved_bytes(), 0u);
  // Arena stays usable after Reset.
  void* p = arena.Allocate(16);
  EXPECT_NE(p, nullptr);
}

TEST(ArenaTest, ReservedCoversAllocated) {
  Arena arena(256);
  for (int i = 0; i < 50; ++i) arena.Allocate(100);
  EXPECT_GE(arena.reserved_bytes(), arena.allocated_bytes());
}

TEST(ArenaTest, GrowthArenaSizesReservationToPayload) {
  // A growth arena starts at its initial block size, so tiny payloads —
  // the typical PlanSet snapshot a cache entry pins — reserve tiny
  // blocks instead of a full default block.
  Arena arena(/*initial_bytes=*/128, /*max_block_bytes=*/1024);
  arena.Allocate(64);
  EXPECT_EQ(arena.reserved_bytes(), 128u);

  // Block sizes double up to the ceiling: 128 + 256 + 512 + 1024 + 1024
  // covers ~2.9 KiB of payload with at most one ceiling block of slack.
  for (int i = 0; i < 45; ++i) arena.Allocate(64);
  EXPECT_GE(arena.reserved_bytes(), arena.allocated_bytes());
  EXPECT_LE(arena.reserved_bytes(), arena.allocated_bytes() + 1024 + 512);

  // Reset restarts the growth schedule from the initial block size.
  arena.Reset();
  arena.Allocate(64);
  EXPECT_EQ(arena.reserved_bytes(), 128u);
}

TEST(ArenaTest, FixedArenaNeverGrowsItsBlockSize) {
  Arena arena(256);
  for (int i = 0; i < 20; ++i) arena.Allocate(200);
  // 200 bytes fit one 256-byte block each; reservations stay linear in
  // block count, never doubling.
  EXPECT_EQ(arena.reserved_bytes(), 20u * 256u);
}

}  // namespace
}  // namespace moqo
