// Tests for the deterministic PRNG used by the workload generator.

#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace moqo {
namespace {

TEST(Xoshiro256Test, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256Test, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Xoshiro256Test, DoublesInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  // Mean of U[0,1) concentrates near 0.5.
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Xoshiro256Test, RangedDoubleRespectsBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble(1.0, 2.0);
    ASSERT_GE(x, 1.0);
    ASSERT_LT(x, 2.0);
  }
}

TEST(Xoshiro256Test, NextIntCoversRangeUniformly) {
  Xoshiro256 rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.NextInt(uint64_t{10})];
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(Xoshiro256Test, InclusiveIntRange) {
  Xoshiro256 rng(13);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int x = rng.NextInt(3, 5);
    ASSERT_GE(x, 3);
    ASSERT_LE(x, 5);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 3u);  // All of 3, 4, 5 appear.
}

TEST(Xoshiro256Test, SampleWithoutReplacementIsDistinct) {
  Xoshiro256 rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.SampleWithoutReplacement(9, 6);
    ASSERT_EQ(sample.size(), 6u);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 6u);
    for (int v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 9);
    }
  }
}

TEST(Xoshiro256Test, SampleAllElements) {
  Xoshiro256 rng(19);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Xoshiro256Test, SampleMoreThanUniverseClamps) {
  Xoshiro256 rng(23);
  EXPECT_EQ(rng.SampleWithoutReplacement(3, 10).size(), 3u);
}

}  // namespace
}  // namespace moqo
