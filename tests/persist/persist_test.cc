// Copyright (c) 2026 moqo authors. MIT license.
//
// Persistence subsystem tests (PR 9): the relocatable PlanSet codec, the
// snapshot file's validation matrix, and the service-level warm restore.
// The headline invariant is bit-exactness — a snapshot round-trip must
// reproduce every cost vector of every frontier down to the IEEE-754 bit
// pattern, for exact and approximate frontiers alike, because the cache
// identity contract is "equal keys imply byte-identical frontiers".

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/plan_set.h"
#include "model/cost_model.h"
#include "persist/format.h"
#include "persist/frontier_codec.h"
#include "persist/plan_set_codec.h"
#include "persist/snapshot.h"
#include "rt/failpoint.h"
#include "service/optimization_service.h"
#include "testing/test_helpers.h"
#include "util/arena.h"

namespace moqo {
namespace {

using persist::DoubleBits;
using persist::PlanSetCodec;
using persist::ReadSnapshot;
using persist::RecordKind;
using persist::SnapshotHeader;
using persist::SnapshotReadResult;
using persist::SnapshotRecordView;
using persist::SnapshotWriter;
using testing::MakeStarQuery;
using testing::MakeTinyCatalog;
using testing::SmallOperatorSpace;

/// Fresh per-test scratch directory (tests must not see each other's
/// snapshot or segment files).
std::string FreshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "moqo_persist_" + tag + "_" +
                          std::to_string(::getpid());
  std::string cmd = "rm -rf " + dir + " && mkdir -p " + dir;
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

/// True iff the two sets carry identical frontiers down to the cost bit
/// patterns (the round-trip acceptance bar; == on doubles would also pass
/// -0.0 vs 0.0, which the bit comparison rejects).
void ExpectBitIdentical(const PlanSet& a, const PlanSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.cost(i).size(), b.cost(i).size());
    for (int k = 0; k < a.cost(i).size(); ++k) {
      EXPECT_EQ(DoubleBits(a.cost(i)[k]), DoubleBits(b.cost(i)[k]))
          << "plan " << i << " dim " << k;
    }
  }
}

/// A small synthetic frontier whose two roots share one scan sub-plan —
/// exercising DAG dedup — with adversarial doubles (negative zero,
/// repeating fractions, denormal-adjacent values) in the cost vectors.
std::shared_ptr<const PlanSet> MakeDagFrontier(Arena* arena) {
  PlanNode* shared_scan = arena->New<PlanNode>();
  shared_scan->op_config = 3;
  shared_scan->table = 0;
  shared_scan->tables = TableSet(0b1);
  shared_scan->cardinality = 1.0 / 3.0;
  shared_scan->row_width = 64.25;
  shared_scan->cost = CostVector(2);
  shared_scan->cost[0] = 0.1;
  shared_scan->cost[1] = -0.0;

  PlanNode* other_scan = arena->New<PlanNode>();
  other_scan->op_config = 1;
  other_scan->table = 1;
  other_scan->tables = TableSet(0b10);
  other_scan->cardinality = 5e-324;  // Smallest denormal.
  other_scan->row_width = 32;
  other_scan->cost = CostVector(2);
  other_scan->cost[0] = 2.0;
  other_scan->cost[1] = 1.0 / 7.0;

  ParetoSet set;
  const double join_costs[][2] = {{1.5, 8.0}, {6.0, 0.5}};
  for (int j = 0; j < 2; ++j) {
    PlanNode* join = arena->New<PlanNode>();
    join->op_config = 10 + j;
    join->table = -1;
    join->left = shared_scan;
    join->right = other_scan;
    join->tables = TableSet(0b11);
    join->cardinality = 1234.5;
    join->row_width = 96;
    join->cost = CostVector(2);
    join->cost[0] = join_costs[j][0];
    join->cost[1] = join_costs[j][1];
    set.Prune(join);
  }
  set.Seal();
  return PlanSet::FromParetoSet(set);
}

TEST(PersistTest, PlanSetCodecRoundTripIsBitExact) {
  Arena arena;
  std::shared_ptr<const PlanSet> original = MakeDagFrontier(&arena);
  ASSERT_EQ(original->size(), 2);

  std::string block;
  PlanSetCodec::Append(*original, &block);
  size_t consumed = 0;
  std::shared_ptr<const PlanSet> decoded =
      PlanSetCodec::Decode(block.data(), block.size(), &consumed);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(consumed, block.size());
  ExpectBitIdentical(*original, *decoded);

  // Node payloads survive verbatim, including the scalar statistics.
  const PlanNode* root = decoded->plan(0);
  ASSERT_NE(root, nullptr);
  ASSERT_NE(root->left, nullptr);
  EXPECT_EQ(root->left->op_config, 3);
  EXPECT_EQ(root->left->table, 0);
  EXPECT_EQ(root->left->tables.mask(), 0b1u);
  EXPECT_EQ(DoubleBits(root->left->cardinality), DoubleBits(1.0 / 3.0));
  EXPECT_EQ(DoubleBits(root->right->cardinality), DoubleBits(5e-324));

  // DAG sharing is preserved: both decoded roots reference ONE copy of
  // each scan, not per-root clones.
  EXPECT_EQ(decoded->plan(0)->left, decoded->plan(1)->left);
  EXPECT_EQ(decoded->plan(0)->right, decoded->plan(1)->right);

  // Re-encoding the decoded set is byte-identical: the codec is a
  // fixed point, so repeated demote/promote cycles never drift.
  std::string block2;
  PlanSetCodec::Append(*decoded, &block2);
  EXPECT_EQ(block, block2);
}

TEST(PersistTest, PlanSetCodecRejectsEveryTruncation) {
  Arena arena;
  std::shared_ptr<const PlanSet> original = MakeDagFrontier(&arena);
  std::string block;
  PlanSetCodec::Append(*original, &block);

  // Every strict prefix must decode to nullptr — never crash, never
  // return a partially-built set.
  for (size_t len = 0; len < block.size(); ++len) {
    EXPECT_EQ(PlanSetCodec::Decode(block.data(), len, nullptr), nullptr)
        << "prefix length " << len;
  }
}

TEST(PersistTest, PlanSetCodecRejectsCorruptStructure) {
  Arena arena;
  std::shared_ptr<const PlanSet> original = MakeDagFrontier(&arena);
  std::string block;
  PlanSetCodec::Append(*original, &block);

  // Forward references (child index >= own index) and out-of-range roots
  // must be rejected; synthesize them by corrupting the counts.
  std::string corrupt = block;
  uint32_t huge = 0x7FFFFFFF;
  std::memcpy(corrupt.data(), &huge, sizeof(huge));  // num_plans.
  EXPECT_EQ(PlanSetCodec::Decode(corrupt.data(), corrupt.size(), nullptr),
            nullptr);
  corrupt = block;
  std::memcpy(corrupt.data() + 4, &huge, sizeof(huge));  // num_nodes.
  EXPECT_EQ(PlanSetCodec::Decode(corrupt.data(), corrupt.size(), nullptr),
            nullptr);
  corrupt = block;
  std::memcpy(corrupt.data() + 8, &huge, sizeof(huge));  // dims.
  EXPECT_EQ(PlanSetCodec::Decode(corrupt.data(), corrupt.size(), nullptr),
            nullptr);
}

TEST(PersistTest, FrontierPayloadRoundTripRebuildsSelection) {
  Arena arena;
  std::shared_ptr<const PlanSet> plan_set = MakeDagFrontier(&arena);
  auto result = std::make_shared<OptimizerResult>();
  result->plan_set = plan_set;
  WeightVector weights(2);
  weights[0] = 0.25;
  weights[1] = 0.75;
  BoundVector bounds(2);
  const PlanSelection selection = SelectPlan(*plan_set, weights, bounds);
  result->plan = selection.plan;
  result->cost = selection.cost;
  result->weighted_cost = selection.weighted_cost;
  result->respects_bounds = true;
  CachedFrontier entry;
  entry.result = result;
  entry.weights = weights;
  entry.bounds = bounds;
  entry.achieved_alpha = 1.25;

  std::string payload;
  ASSERT_TRUE(persist::EncodeFrontierPayload(entry, &payload));
  std::shared_ptr<const CachedFrontier> decoded =
      persist::DecodeFrontierPayload(payload.data(), payload.size(), 1.25);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->achieved_alpha, 1.25);
  ASSERT_EQ(decoded->weights.size(), 2);
  EXPECT_EQ(DoubleBits(decoded->weights[0]), DoubleBits(0.25));
  ASSERT_NE(decoded->result, nullptr);
  ExpectBitIdentical(*plan_set, *decoded->result->plan_set);
  // SelectPlan over bit-identical costs is deterministic: the restored
  // selection matches the original one exactly.
  EXPECT_EQ(DoubleBits(decoded->result->weighted_cost),
            DoubleBits(result->weighted_cost));
  for (int len = static_cast<int>(payload.size()) - 1; len >= 0; len -= 7) {
    EXPECT_EQ(persist::DecodeFrontierPayload(payload.data(), len, 1.25),
              nullptr);
  }
}

TEST(PersistTest, SnapshotWriterReaderRoundTrip) {
  const std::string dir = FreshDir("roundtrip");
  const std::string path = dir + "/snap";
  SnapshotWriter writer(/*catalog_epoch=*/7, /*cost_model_version=*/kCostModelVersion);
  writer.AddRecord(RecordKind::kPlanCacheEntry, "key-a", 111, 1.5, "payload-a");
  writer.AddRecord(RecordKind::kMemoEntry, "key-b", 222, 0.0, "payload-b");
  ASSERT_TRUE(writer.WriteFile(path));
  EXPECT_EQ(writer.record_count(), 2u);

  std::vector<SnapshotRecordView> seen_kinds;
  std::vector<std::string> keys, payloads;
  const SnapshotReadResult result = ReadSnapshot(
      path,
      [](const SnapshotHeader& header) {
        EXPECT_EQ(header.catalog_epoch, 7u);
        EXPECT_EQ(header.cost_model_version, kCostModelVersion);
        EXPECT_EQ(header.record_count, 2u);
        return true;
      },
      [&](const SnapshotRecordView& record) {
        keys.emplace_back(record.key);
        payloads.emplace_back(record.payload);
        if (keys.size() == 1) {
          EXPECT_EQ(record.kind, RecordKind::kPlanCacheEntry);
          EXPECT_EQ(record.key_hash, 111u);
          EXPECT_EQ(record.achieved_alpha, 1.5);
        }
      });
  EXPECT_TRUE(result.loaded);
  EXPECT_TRUE(result.used_mmap);
  EXPECT_EQ(result.records_ok, 2u);
  EXPECT_EQ(result.skipped_checksum, 0u);
  EXPECT_EQ(result.truncated, 0u);
  EXPECT_EQ(keys, (std::vector<std::string>{"key-a", "key-b"}));
  EXPECT_EQ(payloads, (std::vector<std::string>{"payload-a", "payload-b"}));
}

TEST(PersistTest, SnapshotValidationMatrix) {
  const std::string dir = FreshDir("matrix");
  const std::string path = dir + "/snap";
  SnapshotWriter writer(1, kCostModelVersion);
  writer.AddRecord(RecordKind::kPlanCacheEntry, "k1", 1, 1.0, "p1");
  writer.AddRecord(RecordKind::kPlanCacheEntry, "k2", 2, 1.0, "p2");
  writer.AddRecord(RecordKind::kPlanCacheEntry, "k3", 3, 1.0, "p3");
  ASSERT_TRUE(writer.WriteFile(path));

  const auto read_count = [&](const std::string& p) {
    uint64_t n = 0;
    SnapshotReadResult r = ReadSnapshot(
        p, nullptr, [&](const SnapshotRecordView&) { ++n; });
    EXPECT_EQ(r.records_ok, n);
    return r;
  };

  // Missing file: not loaded, no records, no crash.
  SnapshotReadResult missing = read_count(dir + "/nonexistent");
  EXPECT_FALSE(missing.loaded);

  // Flipped magic byte: whole file ignored.
  std::string raw;
  {
    FILE* f = fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buffer[4096];
    size_t n;
    while ((n = fread(buffer, 1, sizeof(buffer), f)) > 0) raw.append(buffer, n);
    fclose(f);
  }
  const auto write_variant = [&](const std::string& name,
                                 const std::string& bytes) {
    const std::string p = dir + "/" + name;
    FILE* f = fopen(p.c_str(), "wb");
    EXPECT_NE(f, nullptr);
    fwrite(bytes.data(), 1, bytes.size(), f);
    fclose(f);
    return p;
  };
  std::string bad_magic = raw;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(read_count(write_variant("bad_magic", bad_magic)).loaded);

  // Corrupted header byte (breaks the header checksum): ignored.
  std::string bad_header = raw;
  bad_header[16] ^= 0x01;  // catalog_epoch byte.
  EXPECT_FALSE(read_count(write_variant("bad_header", bad_header)).loaded);

  // Unknown format version (header checksum recomputed so only the
  // version gate can reject): header trusted, records not parsed.
  std::string bad_version = raw;
  bad_version[8] ^= 0x40;  // format_version.
  {
    const uint64_t checksum = persist::Fnv1a(bad_version.data(), 40);
    std::memcpy(bad_version.data() + 40, &checksum, 8);
  }
  SnapshotReadResult version = read_count(write_variant("bad_version",
                                                        bad_version));
  EXPECT_TRUE(version.loaded);
  EXPECT_NE(version.header.format_version, persist::kFormatVersion);
  EXPECT_EQ(version.records_ok, 0u);

  // Torn tail: drop the last 5 bytes — the final record is lost, the
  // prefix parses.
  std::string torn = raw.substr(0, raw.size() - 5);
  SnapshotReadResult torn_result = read_count(write_variant("torn", torn));
  EXPECT_TRUE(torn_result.loaded);
  EXPECT_EQ(torn_result.records_ok, 2u);
  EXPECT_EQ(torn_result.truncated, 1u);

  // Bit rot inside record 2's payload: that record AND the rest are
  // dropped (the corrupt header's lengths cannot be trusted to find
  // record 3), record 1 survives.
  std::string rot = raw;
  rot[rot.size() - 3] ^= 0x10;  // Inside the last record's payload.
  SnapshotReadResult rot_result = read_count(write_variant("rot", rot));
  EXPECT_TRUE(rot_result.loaded);
  EXPECT_EQ(rot_result.records_ok, 2u);
  EXPECT_EQ(rot_result.skipped_checksum, 1u);

  // Epoch gating is the caller's: header_cb false stops before records.
  uint64_t gated_records = 0;
  SnapshotReadResult gated = ReadSnapshot(
      path, [](const SnapshotHeader&) { return false; },
      [&](const SnapshotRecordView&) { ++gated_records; });
  EXPECT_TRUE(gated.loaded);
  EXPECT_EQ(gated_records, 0u);
}

// ---- Service-level warm restore. ---------------------------------------

ServiceOptions PersistServiceOptions(const std::string& dir) {
  ServiceOptions options;
  options.num_workers = 2;
  options.operators = SmallOperatorSpace();
  options.persist.directory = dir;
  options.persist.tier_capacity_bytes = size_t{8} << 20;
  return options;
}

ObjectiveSet FirstObjectives(int num_objectives) {
  std::vector<Objective> objectives(kAllObjectives.begin(),
                                    kAllObjectives.begin() + num_objectives);
  return ObjectiveSet(objectives);
}

ServiceRequest StarRequest(const Catalog* catalog, int num_dims,
                           int num_objectives, AlgorithmKind algorithm,
                           double alpha) {
  ServiceRequest request;
  request.spec.query =
      std::make_shared<Query>(MakeStarQuery(catalog, num_dims));
  request.spec.objectives = FirstObjectives(num_objectives);
  request.spec.algorithm = algorithm;
  request.spec.alpha = alpha;
  request.preference.weights = WeightVector::Uniform(num_objectives);
  return request;
}

uint64_t OptimizerRuns(const OptimizationService& service) {
  uint64_t runs = 0;
  for (const HistogramSnapshot& lat : service.Stats().latency_by_algorithm) {
    runs += lat.count;
  }
  return runs;
}

TEST(PersistTest, ServiceSnapshotRestoreServesWarmBitIdentical) {
  const std::string dir = FreshDir("service");
  Catalog catalog = MakeTinyCatalog();
  // One exact (EXA) and one approximate (RTA) frontier: the bit-identity
  // acceptance covers both.
  ServiceRequest exact = StarRequest(&catalog, 2, 2, AlgorithmKind::kExa, 1.0);
  ServiceRequest approx =
      StarRequest(&catalog, 3, 3, AlgorithmKind::kRta, 1.5);

  std::vector<CostVector> exact_costs, approx_costs;
  double exact_weighted = 0, approx_weighted = 0;
  {
    OptimizationService service(PersistServiceOptions(dir));
    ServiceResponse r1 = service.SubmitAndWait(exact);
    ASSERT_EQ(r1.status, ResponseStatus::kCompleted);
    exact_costs = r1.plan_set()->costs();
    exact_weighted = r1.result->weighted_cost;
    ServiceResponse r2 = service.SubmitAndWait(approx);
    ASSERT_EQ(r2.status, ResponseStatus::kCompleted);
    approx_costs = r2.plan_set()->costs();
    approx_weighted = r2.result->weighted_cost;
    // star3 publishes table-set frontiers into the memo; the snapshot
    // must carry them too.
    EXPECT_GT(service.MemoStats().insertions, 0u);
  }  // Destructor: snapshot-on-shutdown.

  OptimizationService restored(PersistServiceOptions(dir));
  const persist::PersistStatsSnapshot persisted = restored.PersistStats();
  EXPECT_EQ(persisted.restores_attempted, 1u);
  EXPECT_EQ(persisted.restores_loaded, 1u);
  ASSERT_GT(persisted.restored_plan_entries, 0u);
  EXPECT_GT(persisted.restored_memo_entries, 0u);
  EXPECT_EQ(persisted.restore_skipped_checksum, 0u);
  EXPECT_EQ(persisted.restore_truncated, 0u);

  // First request after restart: answered from the restored cache — no
  // optimizer run — with the SAME frontier, bit for bit.
  ServiceResponse warm_exact = restored.SubmitAndWait(exact);
  ASSERT_EQ(warm_exact.status, ResponseStatus::kCompleted);
  EXPECT_TRUE(warm_exact.cache_hit());
  EXPECT_EQ(OptimizerRuns(restored), 0u);
  ServiceResponse warm_approx = restored.SubmitAndWait(approx);
  ASSERT_EQ(warm_approx.status, ResponseStatus::kCompleted);
  EXPECT_TRUE(warm_approx.cache_hit());
  EXPECT_EQ(OptimizerRuns(restored), 0u);

  const auto expect_same = [](const std::vector<CostVector>& before,
                              const std::vector<CostVector>& after) {
    ASSERT_EQ(before.size(), after.size());
    for (size_t i = 0; i < before.size(); ++i) {
      for (int k = 0; k < before[i].size(); ++k) {
        EXPECT_EQ(DoubleBits(before[i][k]), DoubleBits(after[i][k]));
      }
    }
  };
  expect_same(exact_costs, warm_exact.plan_set()->costs());
  expect_same(approx_costs, warm_approx.plan_set()->costs());
  EXPECT_EQ(DoubleBits(exact_weighted),
            DoubleBits(warm_exact.result->weighted_cost));
  EXPECT_EQ(DoubleBits(approx_weighted),
            DoubleBits(warm_approx.result->weighted_cost));
}

TEST(PersistTest, RestoreSkipsWholeSnapshotOnEpochMismatch) {
  const std::string dir = FreshDir("epoch");
  Catalog catalog = MakeTinyCatalog();
  {
    ServiceOptions options = PersistServiceOptions(dir);
    options.persist.catalog_epoch = 1;
    OptimizationService service(options);
    service.SubmitAndWait(
        StarRequest(&catalog, 2, 2, AlgorithmKind::kExa, 1.0));
  }
  ServiceOptions options = PersistServiceOptions(dir);
  options.persist.catalog_epoch = 2;  // Statistics changed since the write.
  OptimizationService service(options);
  const persist::PersistStatsSnapshot persisted = service.PersistStats();
  EXPECT_EQ(persisted.restored_entries(), 0u);
  EXPECT_GT(persisted.restore_skipped_epoch, 0u);
  EXPECT_EQ(service.CacheStats().entries, 0u);
}

TEST(PersistTest, RestoreSkipsWholeSnapshotOnCostModelMismatch) {
  const std::string dir = FreshDir("costmodel");
  // Hand-write a snapshot claiming a future cost model: every stored cost
  // would be stale, so the restore must load nothing.
  SnapshotWriter writer(/*catalog_epoch=*/0, kCostModelVersion + 1);
  writer.AddRecord(RecordKind::kPlanCacheEntry, "stale", 9, 1.0, "junk");
  ASSERT_TRUE(writer.WriteFile(dir + "/moqo.snapshot"));

  OptimizationService service(PersistServiceOptions(dir));
  const persist::PersistStatsSnapshot persisted = service.PersistStats();
  EXPECT_EQ(persisted.restored_entries(), 0u);
  EXPECT_EQ(persisted.restore_skipped_version, 1u);
  EXPECT_EQ(service.CacheStats().entries, 0u);
}

TEST(PersistTest, TornSnapshotRestoresPrefixAndStaysServing) {
  const std::string dir = FreshDir("torn");
  Catalog catalog = MakeTinyCatalog();
  ServiceRequest request =
      StarRequest(&catalog, 2, 2, AlgorithmKind::kExa, 1.0);
  {
    OptimizationService service(PersistServiceOptions(dir));
    service.SubmitAndWait(request);
  }
  // Tear the tail off the snapshot: a crash mid-write of a *new* file
  // never produces this (tmp + rename), but disks rot and copies
  // truncate — the reader must degrade to the surviving prefix.
  const std::string path = dir + "/moqo.snapshot";
  struct stat st;
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  ASSERT_EQ(::truncate(path.c_str(), st.st_size - 3), 0);

  OptimizationService service(PersistServiceOptions(dir));
  const persist::PersistStatsSnapshot persisted = service.PersistStats();
  EXPECT_GT(persisted.restore_truncated, 0u);
  // Whatever was lost, the service still answers — cold or warm.
  ServiceResponse response = service.SubmitAndWait(request);
  EXPECT_EQ(response.status, ResponseStatus::kCompleted);
}

TEST(PersistTest, FailpointsForceColdStartAndFailedSnapshotCleanly) {
  if (!rt::kFailpointsEnabled) {
    GTEST_SKIP() << "built with MOQO_FAILPOINTS=OFF";
  }
  const std::string dir = FreshDir("failpoints");
  Catalog catalog = MakeTinyCatalog();
  ServiceRequest request =
      StarRequest(&catalog, 2, 2, AlgorithmKind::kExa, 1.0);
  {
    OptimizationService service(PersistServiceOptions(dir));
    service.SubmitAndWait(request);
    ASSERT_TRUE(service.SnapshotNow());
  }

  // persist.read: the restore open fails -> clean cold start.
  ASSERT_TRUE(rt::FailpointRegistry::Global().Arm("persist.read",
                                                  "always:return_error"));
  {
    ServiceOptions options = PersistServiceOptions(dir);
    options.persist.snapshot_on_shutdown = false;
    OptimizationService service(options);
    EXPECT_EQ(service.PersistStats().restored_entries(), 0u);
    ServiceResponse response = service.SubmitAndWait(request);
    EXPECT_EQ(response.status, ResponseStatus::kCompleted);
  }
  rt::FailpointRegistry::Global().DisarmAll();

  // persist.mmap: mmap refused -> the read(2) fallback restores the same
  // entries.
  ASSERT_TRUE(
      rt::FailpointRegistry::Global().Arm("persist.mmap", "always:return_error"));
  {
    ServiceOptions options = PersistServiceOptions(dir);
    options.persist.snapshot_on_shutdown = false;
    OptimizationService service(options);
    EXPECT_GT(service.PersistStats().restored_entries(), 0u);
    ServiceResponse response = service.SubmitAndWait(request);
    EXPECT_EQ(response.status, ResponseStatus::kCompleted);
    EXPECT_TRUE(response.cache_hit());
  }
  rt::FailpointRegistry::Global().DisarmAll();

  // persist.write: the shutdown snapshot fails; the previous snapshot
  // survives untouched (tmp + rename) and the failure is counted.
  ASSERT_TRUE(rt::FailpointRegistry::Global().Arm("persist.write",
                                                  "always:return_error"));
  {
    OptimizationService service(PersistServiceOptions(dir));
    EXPECT_FALSE(service.SnapshotNow());
    EXPECT_GE(service.PersistStats().snapshot_failures, 1u);
  }
  rt::FailpointRegistry::Global().DisarmAll();
  {
    ServiceOptions options = PersistServiceOptions(dir);
    options.persist.snapshot_on_shutdown = false;
    OptimizationService service(options);
    EXPECT_GT(service.PersistStats().restored_entries(), 0u);
  }
}

}  // namespace
}  // namespace moqo
