// Copyright (c) 2026 moqo authors. MIT license.
//
// RAM→disk tier tests (PR 9): the DiskTier container mechanics, then the
// tier wired behind PlanCache and SubplanMemo — demotion on eviction,
// promotion on a RAM miss (surfacing as a tier hit), the relaxed-alpha
// gate on disk probes, and the stats-accounting regressions around
// ReclassifyMissAsHit.

#include "persist/disk_tier.h"

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/plan_set.h"
#include "memo/subplan_memo.h"
#include "persist/format.h"
#include "service/plan_cache.h"
#include "util/arena.h"

namespace moqo {
namespace {

using persist::DiskTier;
using persist::DoubleBits;

/// Fresh per-test scratch directory for segment files.
std::string FreshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "moqo_tier_" + tag + "_" +
                          std::to_string(::getpid());
  std::string cmd = "rm -rf " + dir + " && mkdir -p " + dir;
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

DiskTier::Options TierOptions(const std::string& dir,
                              size_t capacity_bytes = size_t{1} << 20,
                              int shards = 1) {
  DiskTier::Options options;
  options.directory = dir;
  options.name = "test_tier";
  options.capacity_bytes = capacity_bytes;
  options.shards = shards;
  return options;
}

/// On-disk record footprint: 32-byte header + key + payload (disk_tier.h).
size_t RecordBytes(const std::string& key, const std::string& payload) {
  return 32 + key.size() + payload.size();
}

TEST(TieredLruTest, DiskTierRoundTripIsReadOnce) {
  DiskTier tier(TierOptions(FreshDir("roundtrip")));
  ASSERT_TRUE(tier.ok());
  ASSERT_TRUE(tier.Put(42, "key", 1.25, "payload-bytes"));
  EXPECT_EQ(tier.GetStats().entries, 1u);
  EXPECT_EQ(tier.GetStats().bytes, RecordBytes("key", "payload-bytes"));

  std::string payload;
  double alpha = 0;
  ASSERT_TRUE(tier.Take(42, "key", 2.0, &payload, &alpha));
  EXPECT_EQ(payload, "payload-bytes");
  EXPECT_EQ(DoubleBits(alpha), DoubleBits(1.25));

  // Promotion is a move: the entry is gone, its bytes reclaimed from the
  // live accounting.
  EXPECT_FALSE(tier.Take(42, "key", 2.0, &payload, &alpha));
  const DiskTier::Stats stats = tier.GetStats();
  EXPECT_EQ(stats.demotions, 1u);
  EXPECT_EQ(stats.promotions, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(TieredLruTest, DiskTierAlphaGateSkipsWithoutErasing) {
  DiskTier tier(TierOptions(FreshDir("alpha")));
  ASSERT_TRUE(tier.Put(7, "k", /*achieved_alpha=*/1.5, "p"));

  // A probe needing a tighter guarantee than the stored entry must miss —
  // and must NOT consume the entry: a later, looser probe still hits.
  std::string payload;
  EXPECT_FALSE(tier.Take(7, "k", /*max_alpha=*/1.2, &payload, nullptr));
  EXPECT_EQ(tier.GetStats().entries, 1u);
  EXPECT_TRUE(tier.Take(7, "k", /*max_alpha=*/1.5, &payload, nullptr));
  EXPECT_EQ(payload, "p");
}

TEST(TieredLruTest, DiskTierHashCollisionsNeverAlias) {
  DiskTier tier(TierOptions(FreshDir("collision")));
  // Two distinct keys forced onto the same hash (shapes differ, so both
  // are stored): the full-key verify must route each probe to its own
  // payload, and an unknown key with a known hash must miss.
  ASSERT_TRUE(tier.Put(99, "key-a", 1.0, "payload-a"));
  ASSERT_TRUE(tier.Put(99, "key-bee", 1.0, "payload-bee"));
  EXPECT_EQ(tier.GetStats().entries, 2u);

  std::string payload;
  ASSERT_TRUE(tier.Take(99, "key-bee", 2.0, &payload, nullptr));
  EXPECT_EQ(payload, "payload-bee");
  EXPECT_FALSE(tier.Take(99, "key-c", 2.0, &payload, nullptr));
  ASSERT_TRUE(tier.Take(99, "key-a", 2.0, &payload, nullptr));
  EXPECT_EQ(payload, "payload-a");

  // A SAME-shape collision (equal hash, key length, payload length, and
  // alpha) trips Put's re-demotion dedup: the second entry is not
  // appended. That must degrade to a clean miss for the new key — the
  // full-key check may never serve the resident key's payload for it.
  ASSERT_TRUE(tier.Put(77, "twin-1", 1.0, "payload-1"));
  ASSERT_TRUE(tier.Put(77, "twin-2", 1.0, "payload-2"));
  EXPECT_EQ(tier.GetStats().entries, 1u);
  EXPECT_FALSE(tier.Take(77, "twin-2", 2.0, &payload, nullptr));
  ASSERT_TRUE(tier.Take(77, "twin-1", 2.0, &payload, nullptr));
  EXPECT_EQ(payload, "payload-1");
}

TEST(TieredLruTest, DiskTierDedupsIdenticalReDemotion) {
  DiskTier tier(TierOptions(FreshDir("dedup")));
  ASSERT_TRUE(tier.Put(5, "k", 1.0, "same-payload"));
  const size_t bytes = tier.GetStats().bytes;
  // Re-demoting a byte-identical entry (same hash, key, alpha, payload
  // shape) is a no-op, not a duplicate index entry or dead bytes.
  ASSERT_TRUE(tier.Put(5, "k", 1.0, "same-payload"));
  EXPECT_EQ(tier.GetStats().entries, 1u);
  EXPECT_EQ(tier.GetStats().bytes, bytes);
}

TEST(TieredLruTest, DiskTierResetsShardAtBudgetAndRefusesOversize) {
  // Tiny budget: a handful of records overflows the single shard.
  const std::string payload(64, 'x');
  DiskTier tier(TierOptions(FreshDir("reset"), /*capacity_bytes=*/512));
  ASSERT_TRUE(tier.ok());
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(tier.Put(1000 + i, "key" + std::to_string(i), 1.0, payload));
  }
  const DiskTier::Stats stats = tier.GetStats();
  EXPECT_EQ(stats.demotions, 32u);
  EXPECT_GT(stats.dropped, 0u);  // At least one generation was shed.
  EXPECT_LT(stats.entries, 32u);
  EXPECT_LE(stats.bytes, 512u + RecordBytes("key00", payload));

  // A single record bigger than the whole shard budget can never be
  // stored; refusing it must not disturb the resident generation.
  const size_t entries_before = tier.GetStats().entries;
  EXPECT_FALSE(tier.Put(1, "big", 1.0, std::string(4096, 'y')));
  EXPECT_EQ(tier.GetStats().entries, entries_before);
}

// ---- PlanCache with an attached tier. ----------------------------------

ProblemSignature Sig(const std::string& key) {
  ProblemSignature signature;
  signature.key = key;
  uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : key) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  signature.hash = hash;
  return signature;
}

/// A cached entry with a real one-plan frontier (the demotion hook skips
/// entries with no restorable plan set); `weighted_cost` lands in
/// cost[0], so round-tripped entries are distinguishable by cost bits.
std::shared_ptr<const CachedFrontier> FrontierEntry(double weighted_cost,
                                                    double alpha = 1.0) {
  Arena arena;
  PlanNode* node = arena.New<PlanNode>();
  node->op_config = 1;
  node->table = 0;
  node->tables = TableSet(0b1);
  node->cardinality = 10;
  node->row_width = 8;
  node->cost = CostVector(2);
  node->cost[0] = weighted_cost;
  node->cost[1] = 1.0;
  ParetoSet set;
  set.Prune(node);
  set.Seal();
  auto plan_set = PlanSet::FromParetoSet(set);

  auto result = std::make_shared<OptimizerResult>();
  result->plan = plan_set->plan(0);
  result->cost = plan_set->cost(0);
  result->weighted_cost = weighted_cost;
  result->plan_set = std::move(plan_set);
  auto cached = std::make_shared<CachedFrontier>();
  cached->result = std::move(result);
  cached->weights = WeightVector::Uniform(2);
  cached->achieved_alpha = alpha;
  return cached;
}

/// PlanCache with one RAM slot, so every second insert demotes.
std::unique_ptr<PlanCache> OneSlotCache(std::shared_ptr<DiskTier> tier) {
  PlanCache::Options options;
  options.capacity = 1;
  options.shards = 1;
  auto cache = std::make_unique<PlanCache>(options);
  cache->AttachTier(std::move(tier));
  return cache;
}

TEST(TieredLruTest, PlanCacheDemotesOnEvictionAndPromotesOnMiss) {
  auto tier = std::make_shared<DiskTier>(TierOptions(FreshDir("promote")));
  std::unique_ptr<PlanCache> cache = OneSlotCache(tier);

  cache->Insert(Sig("a"), FrontierEntry(1.0));
  cache->Insert(Sig("b"), FrontierEntry(2.0));  // Evicts + demotes a.
  EXPECT_EQ(tier->GetStats().demotions, 1u);
  EXPECT_EQ(tier->GetStats().entries, 1u);

  // RAM miss on a → tier hit: promoted back (evicting + demoting b), the
  // recorded miss reclassified, surfaced via from_tier.
  bool from_tier = false;
  auto hit = cache->Lookup(Sig("a"), PlanCache::kAnyAlpha,
                           /*record_stats=*/true, &from_tier);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(from_tier);
  ASSERT_EQ(hit->result->plan_set->size(), 1);
  EXPECT_EQ(DoubleBits(hit->result->plan_set->cost(0)[0]), DoubleBits(1.0));
  // The selection is re-derived from the decoded frontier (SelectPlan
  // with the stored uniform weights), not copied: 1*1.0 + 1*1.0.
  EXPECT_EQ(DoubleBits(hit->result->weighted_cost), DoubleBits(2.0));

  PlanCache::Stats stats = cache->GetStats();
  EXPECT_EQ(stats.hits, 1u);    // The miss was reclassified...
  EXPECT_EQ(stats.misses, 0u);  // ...so the net contribution is one hit.
  EXPECT_EQ(stats.tier_hits, 1u);
  EXPECT_EQ(tier->GetStats().promotions, 1u);
  EXPECT_EQ(tier->GetStats().demotions, 2u);  // b demoted by the promotion.

  // A RAM hit on the promoted entry involves no tier traffic.
  from_tier = true;
  ASSERT_NE(cache->Lookup(Sig("a"), PlanCache::kAnyAlpha, true, &from_tier),
            nullptr);
  EXPECT_FALSE(from_tier);
  EXPECT_EQ(tier->GetStats().promotions, 1u);
}

TEST(TieredLruTest, PlanCacheTierProbeRespectsAlphaGate) {
  auto tier = std::make_shared<DiskTier>(TierOptions(FreshDir("alphagate")));
  std::unique_ptr<PlanCache> cache = OneSlotCache(tier);

  cache->Insert(Sig("loose"), FrontierEntry(1.0, /*alpha=*/1.5));
  cache->Insert(Sig("other"), FrontierEntry(2.0));  // Demotes "loose".

  // The demoted entry only guarantees alpha 1.5; a request needing 1.2
  // must miss — without consuming the tier entry.
  bool from_tier = false;
  EXPECT_EQ(cache->Lookup(Sig("loose"), /*max_alpha=*/1.2, true, &from_tier),
            nullptr);
  EXPECT_FALSE(from_tier);
  EXPECT_EQ(cache->GetStats().misses, 1u);
  EXPECT_EQ(tier->GetStats().entries, 1u);

  // A looser request is served from the tier, alpha tag intact.
  auto hit = cache->Lookup(Sig("loose"), /*max_alpha=*/2.0, true, &from_tier);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(from_tier);
  EXPECT_EQ(DoubleBits(hit->achieved_alpha), DoubleBits(1.5));
}

TEST(TieredLruTest, UncountedTierHitStaysUncounted) {
  // Regression: ReclassifyMissAsHit must only fire for stats-recording
  // lookups. The service's coalescing re-probe passes record_stats=false;
  // if a tier promotion inside such a probe reclassified anyway, hits
  // would exceed lookups and the hits+misses==lookups invariant breaks.
  auto tier = std::make_shared<DiskTier>(TierOptions(FreshDir("uncounted")));
  std::unique_ptr<PlanCache> cache = OneSlotCache(tier);
  cache->Insert(Sig("a"), FrontierEntry(1.0));
  cache->Insert(Sig("b"), FrontierEntry(2.0));  // Demotes a.

  bool from_tier = false;
  auto hit = cache->Lookup(Sig("a"), PlanCache::kAnyAlpha,
                           /*record_stats=*/false, &from_tier);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(from_tier);  // Still surfaced as a tier hit to the caller...
  PlanCache::Stats stats = cache->GetStats();
  EXPECT_EQ(stats.hits, 0u);  // ...but the counters never moved.
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.tier_hits, 1u);  // Tier traffic is real and counted.
}

TEST(TieredLruTest, SubplanMemoDemotesAndPromotesBitExactly) {
  auto tier = std::make_shared<DiskTier>(TierOptions(FreshDir("memo")));
  SubplanMemo::Options options;
  options.capacity = 1;
  options.shards = 1;
  SubplanMemo memo(options);
  memo.AttachTier(tier);

  SubplanSignature sig_x;
  sig_x.key = "subplan-x";
  sig_x.hash = 101;
  SubplanSignature sig_y;
  sig_y.key = "subplan-y";
  sig_y.hash = 202;

  Arena arena;
  ParetoSet set;
  for (int i = 0; i < 2; ++i) {
    PlanNode* node = arena.New<PlanNode>();
    node->op_config = i;
    node->table = 0;
    node->tables = TableSet(0b1);
    node->cardinality = 3.5;
    node->row_width = 16;
    node->cost = CostVector(2);
    node->cost[0] = i == 0 ? 1.0 / 3.0 : 4.0;
    node->cost[1] = i == 0 ? 5.0 : -0.0;
    set.Prune(node);
  }
  set.Seal();
  std::shared_ptr<const PlanSet> frontier_x = PlanSet::FromParetoSet(set);

  memo.Insert(sig_x, frontier_x);
  memo.Insert(sig_y, PlanSet::Empty());  // Evicts + demotes x.
  EXPECT_EQ(tier->GetStats().demotions, 1u);

  std::shared_ptr<const PlanSet> promoted = memo.Lookup(sig_x);
  ASSERT_NE(promoted, nullptr);
  ASSERT_EQ(promoted->size(), frontier_x->size());
  for (int i = 0; i < promoted->size(); ++i) {
    for (int k = 0; k < promoted->cost(i).size(); ++k) {
      EXPECT_EQ(DoubleBits(promoted->cost(i)[k]),
                DoubleBits(frontier_x->cost(i)[k]));
    }
  }
  const SubplanMemo::Stats stats = memo.GetStats();
  EXPECT_EQ(stats.tier_hits, 1u);
  EXPECT_GE(stats.hits, 1u);
  EXPECT_EQ(tier->GetStats().promotions, 1u);
}

TEST(TieredLruTest, ConcurrentDemotePromoteHammer) {
  // Thrash a 1-slot cache from several threads so demotions, promotions,
  // and RAM hits interleave; the assertions are "no crash, no deadlock,
  // sane counters" — the locking contract under TSan.
  auto tier = std::make_shared<DiskTier>(
      TierOptions(FreshDir("hammer"), size_t{1} << 20, /*shards=*/2));
  std::unique_ptr<PlanCache> cache = OneSlotCache(tier);

  constexpr int kThreads = 4;
  constexpr int kOps = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::string name = "key" + std::to_string((t + i) % 8);
        if (i % 3 == 0) {
          cache->Insert(Sig(name), FrontierEntry(i + 1.0));
        } else {
          bool from_tier = false;
          cache->Lookup(Sig(name), PlanCache::kAnyAlpha, true, &from_tier);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const DiskTier::Stats stats = tier->GetStats();
  EXPECT_GT(stats.demotions, 0u);
  EXPECT_GE(stats.demotions, stats.promotions);
  const PlanCache::Stats cache_stats = cache->GetStats();
  EXPECT_EQ(cache_stats.hits + cache_stats.misses,
            uint64_t{kThreads} * (kOps - (kOps + 2) / 3));
  // Every successful tier read surfaced as exactly one tier hit.
  EXPECT_EQ(cache_stats.tier_hits, stats.promotions);
}

}  // namespace
}  // namespace moqo
