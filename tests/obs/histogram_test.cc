// Copyright (c) 2026 moqo authors. MIT license.
//
// LatencyHistogram / HistogramSnapshot: quantile accuracy against exact
// sort-based percentiles, merge semantics, CountAtMost, and concurrent
// recording consistency.

#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/random.h"

namespace moqo {
namespace {

/// Exact linear-interpolation percentile — the reference the bucketed
/// estimate is checked against.
double ExactPercentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  if (p <= 0) return values.front();
  if (p >= 100) return values.back();
  const double rank = p / 100.0 * (values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - lo;
  return lo + 1 < values.size()
             ? values[lo] * (1 - frac) + values[lo + 1] * frac
             : values[lo];
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  LatencyHistogram histogram;
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.sum_ms, 0);
  EXPECT_EQ(snapshot.max_ms, 0);
  EXPECT_EQ(snapshot.PercentileMs(50), 0);
  EXPECT_EQ(snapshot.MeanMs(), 0);
  EXPECT_EQ(snapshot.CountAtMost(1e9), 0u);
}

TEST(HistogramTest, SingleSampleEveryQuantileNearIt) {
  LatencyHistogram histogram;
  histogram.Record(3.7);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 1u);
  EXPECT_DOUBLE_EQ(snapshot.max_ms, 3.7);
  EXPECT_DOUBLE_EQ(snapshot.sum_ms, 3.7);
  for (double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    // Bucket resolution bounds the error at 2^(1/16)-1 ~ 4.4%.
    EXPECT_NEAR(snapshot.PercentileMs(p), 3.7, 3.7 * 0.045) << "p=" << p;
  }
}

TEST(HistogramTest, QuantilesTrackExactPercentilesOnLogUniformSamples) {
  // Log-uniform over ~6 decades: every octave of the bucket range gets
  // traffic, which is exactly the workload the log bucketing is shaped
  // for (latencies from microseconds to minutes).
  Xoshiro256 rng(42);
  std::vector<double> samples;
  LatencyHistogram histogram;
  for (int i = 0; i < 20000; ++i) {
    const double ms = std::pow(10.0, -2.0 + 6.0 * rng.NextDouble());
    samples.push_back(ms);
    histogram.Record(ms);
  }
  const HistogramSnapshot snapshot = histogram.Snapshot();
  ASSERT_EQ(snapshot.count, samples.size());
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9}) {
    const double exact = ExactPercentile(samples, p);
    const double estimate = snapshot.PercentileMs(p);
    // Half-bucket interpolation error plus the n-1 vs n rank convention
    // difference; 5% relative tolerance covers both with margin.
    EXPECT_NEAR(estimate, exact, exact * 0.05) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(snapshot.max_ms,
                   *std::max_element(samples.begin(), samples.end()));
  // The max bounds every quantile (p100 returns it exactly).
  EXPECT_LE(snapshot.PercentileMs(100), snapshot.max_ms);
}

TEST(HistogramTest, OutOfRangeSamplesClampIntoEdgeBuckets) {
  LatencyHistogram histogram;
  histogram.Record(0.0);     // Underflow.
  histogram.Record(-5.0);    // Garbage: underflow, never UB.
  histogram.Record(1e12);    // Overflow (~31 years).
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 3u);
  EXPECT_EQ(snapshot.buckets[0], 2u);
  EXPECT_EQ(snapshot.buckets[HistogramSnapshot::kNumBuckets - 1], 1u);
  EXPECT_DOUBLE_EQ(snapshot.max_ms, 1e12);
  // Overflow quantiles are clamped by the exact max, not the bucket edge.
  EXPECT_LE(snapshot.PercentileMs(100), 1e12);
}

TEST(HistogramTest, CountAtMostIsMonotoneAndExactAtBucketEdges) {
  LatencyHistogram histogram;
  for (int i = 1; i <= 1000; ++i) histogram.Record(static_cast<double>(i));
  const HistogramSnapshot snapshot = histogram.Snapshot();
  uint64_t previous = 0;
  for (double bound : {0.5, 1.0, 10.0, 100.0, 500.0, 1000.0, 5000.0}) {
    const uint64_t at_most = snapshot.CountAtMost(bound);
    EXPECT_GE(at_most, previous) << "bound=" << bound;
    previous = at_most;
  }
  EXPECT_EQ(snapshot.CountAtMost(5000.0), 1000u);
  EXPECT_EQ(snapshot.CountAtMost(0.0), 0u);
  // Within bucket resolution of the true rank.
  EXPECT_NEAR(static_cast<double>(snapshot.CountAtMost(500.0)), 500.0, 25.0);
}

TEST(HistogramTest, MergeEqualsRecordingIntoOne) {
  LatencyHistogram a, b, combined;
  Xoshiro256 rng(7);
  for (int i = 0; i < 5000; ++i) {
    const double ms = std::pow(10.0, -1.0 + 4.0 * rng.NextDouble());
    (i % 2 == 0 ? a : b).Record(ms);
    combined.Record(ms);
  }
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  const HistogramSnapshot reference = combined.Snapshot();
  EXPECT_EQ(merged.count, reference.count);
  EXPECT_DOUBLE_EQ(merged.max_ms, reference.max_ms);
  EXPECT_NEAR(merged.sum_ms, reference.sum_ms, reference.sum_ms * 1e-12);
  EXPECT_EQ(merged.buckets, reference.buckets);
  for (double p : {50.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(merged.PercentileMs(p), reference.PercentileMs(p));
  }
}

TEST(HistogramTest, ConcurrentRecordersLoseNothing) {
  LatencyHistogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(0.001 * ((t * kPerThread + i) % 997 + 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, static_cast<uint64_t>(kThreads) * kPerThread);
  // count is derived from the bucket sums, so the invariant the quantile
  // scan relies on holds by construction; check it anyway.
  uint64_t total = 0;
  for (uint64_t bucket : snapshot.buckets) total += bucket;
  EXPECT_EQ(snapshot.count, total);
  EXPECT_DOUBLE_EQ(snapshot.max_ms, 0.001 * 997);
}

TEST(HistogramTest, SnapshotOfSamplesMatchesManualRecording) {
  const std::vector<double> samples = {0.5, 1.5, 2.5, 40.0, 0.02};
  LatencyHistogram histogram;
  for (double ms : samples) histogram.Record(ms);
  const HistogramSnapshot manual = histogram.Snapshot();
  const HistogramSnapshot oneshot = SnapshotOfSamples(samples);
  EXPECT_EQ(oneshot.count, manual.count);
  EXPECT_EQ(oneshot.buckets, manual.buckets);
  EXPECT_DOUBLE_EQ(oneshot.max_ms, manual.max_ms);
}

}  // namespace
}  // namespace moqo
