// Copyright (c) 2026 moqo authors. MIT license.
//
// SlowQueryLog: worst-N retention, ordering, threshold behavior, and
// concurrent offers.

#include "obs/slow_query_log.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace moqo {
namespace {

SlowQueryEntry Entry(double total_ms, uint64_t sequence = 0) {
  SlowQueryEntry entry;
  entry.signature = 0x1000 + sequence;
  entry.algorithm = "RTA";
  entry.phase = "optimize";
  entry.total_ms = total_ms;
  entry.optimize_ms = total_ms;
  entry.sequence = sequence;
  return entry;
}

TEST(SlowQueryLogTest, KeepsEverythingUntilFull) {
  SlowQueryLog log(4);
  log.Offer(Entry(3.0, 1));
  log.Offer(Entry(1.0, 2));
  log.Offer(Entry(2.0, 3));
  EXPECT_EQ(log.size(), 3u);
  const std::vector<SlowQueryEntry> worst = log.WorstFirst();
  ASSERT_EQ(worst.size(), 3u);
  EXPECT_DOUBLE_EQ(worst[0].total_ms, 3.0);
  EXPECT_DOUBLE_EQ(worst[1].total_ms, 2.0);
  EXPECT_DOUBLE_EQ(worst[2].total_ms, 1.0);
  EXPECT_DOUBLE_EQ(log.WorstMs(), 3.0);
}

TEST(SlowQueryLogTest, EvictsTheFastestWhenFull) {
  SlowQueryLog log(3);
  log.Offer(Entry(10.0, 1));
  log.Offer(Entry(20.0, 2));
  log.Offer(Entry(30.0, 3));
  log.Offer(Entry(25.0, 4));  // Evicts 10.0.
  log.Offer(Entry(5.0, 5));   // Below the floor: dropped.
  const std::vector<SlowQueryEntry> worst = log.WorstFirst();
  ASSERT_EQ(worst.size(), 3u);
  EXPECT_DOUBLE_EQ(worst[0].total_ms, 30.0);
  EXPECT_DOUBLE_EQ(worst[1].total_ms, 25.0);
  EXPECT_DOUBLE_EQ(worst[2].total_ms, 20.0);
}

TEST(SlowQueryLogTest, TiesBreakByAdmissionOrder) {
  SlowQueryLog log(4);
  log.Offer(Entry(5.0, 9));
  log.Offer(Entry(5.0, 2));
  log.Offer(Entry(7.0, 5));
  const std::vector<SlowQueryEntry> worst = log.WorstFirst();
  ASSERT_EQ(worst.size(), 3u);
  EXPECT_EQ(worst[0].sequence, 5u);
  EXPECT_EQ(worst[1].sequence, 2u);  // Equal latency: earlier admission first.
  EXPECT_EQ(worst[2].sequence, 9u);
}

TEST(SlowQueryLogTest, EntryPayloadSurvivesRoundTrip) {
  SlowQueryLog log(2);
  SlowQueryEntry entry;
  entry.signature = 0xdeadbeef;
  entry.algorithm = "EXA";
  entry.phase = "queue";
  entry.total_ms = 12.5;
  entry.queue_ms = 9.0;
  entry.optimize_ms = 3.5;
  entry.alpha = 1.25;
  entry.frontier_size = 17;
  entry.sequence = 3;
  log.Offer(entry);
  const std::vector<SlowQueryEntry> worst = log.WorstFirst();
  ASSERT_EQ(worst.size(), 1u);
  EXPECT_EQ(worst[0].signature, 0xdeadbeefu);
  EXPECT_STREQ(worst[0].algorithm, "EXA");
  EXPECT_STREQ(worst[0].phase, "queue");
  EXPECT_DOUBLE_EQ(worst[0].queue_ms, 9.0);
  EXPECT_DOUBLE_EQ(worst[0].optimize_ms, 3.5);
  EXPECT_DOUBLE_EQ(worst[0].alpha, 1.25);
  EXPECT_EQ(worst[0].frontier_size, 17);
}

TEST(SlowQueryLogTest, ConcurrentOffersRetainTheGlobalWorst) {
  SlowQueryLog log(8);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t sequence =
            static_cast<uint64_t>(t) * kPerThread + i;
        log.Offer(Entry(static_cast<double>(sequence), sequence));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // 16000 total offers at distinct latencies 0..15999; the 8 worst are
  // 15999, 15998, ..., 15992 regardless of interleaving (the lock-free
  // threshold only ever rises to the kept floor, so a global-worst offer
  // can never be shed by a stale threshold).
  const std::vector<SlowQueryEntry> worst = log.WorstFirst();
  ASSERT_EQ(worst.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(worst[i].total_ms, 15999.0 - i);
  }
}

}  // namespace
}  // namespace moqo
