// Copyright (c) 2026 moqo authors. MIT license.
//
// Tracer: span recording under concurrency, ring wrap-around accounting,
// sampling, the disabled path, and Chrome trace-event JSON export
// (structural well-formedness: balanced braces, required keys, one track
// per recording thread).

#include "obs/trace.h"

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace moqo {
namespace {

TraceOptions EnabledOptions(size_t ring_capacity = 1 << 12,
                            int sample_period = 1) {
  TraceOptions options;
  options.enabled = true;
  options.ring_capacity = ring_capacity;
  options.sample_period = sample_period;
  return options;
}

/// Occurrences of `needle` in `haystack` (non-overlapping).
int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// Structural JSON check: quotes-aware brace/bracket balance. Not a full
/// parser, but catches every truncation/escaping bug a string builder can
/// produce.
bool BracesBalanced(const std::string& json) {
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // Skip the escaped character.
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !in_string;
}

TEST(TraceTest, DisabledTracerRecordsNothing) {
  Tracer tracer;  // Default options: disabled.
  EXPECT_FALSE(tracer.enabled());
  {
    TraceSpan span(&tracer, "test", "noop");
    span.AddArg("x", 1);
    EXPECT_FALSE(span.active());
  }
  {
    TraceSpan span(nullptr, "test", "null-tracer");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(tracer.recorded_events(), 0u);
  const std::string json = tracer.ExportChromeTrace();
  EXPECT_TRUE(BracesBalanced(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(TraceTest, SpanRecordsNameCategoryArgsAndDuration) {
  Tracer tracer(EnabledOptions());
  {
    TraceSpan span(&tracer, "service", "request", /*id=*/42);
    span.AddArg("queue_us", 123);
    span.AddArg("rungs", 3);
    span.AddArg("dropped", 999);  // Third arg: silently ignored.
  }
  EXPECT_EQ(tracer.recorded_events(), 1u);
  const std::string json = tracer.ExportChromeTrace();
  EXPECT_TRUE(BracesBalanced(json));
  EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"service\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_us\":123"), std::string::npos);
  EXPECT_NE(json.find("\"rungs\":3"), std::string::npos);
  EXPECT_EQ(json.find("\"dropped\""), std::string::npos);
  // The id correlates spans of one request across categories.
  EXPECT_NE(json.find("\"id\":42"), std::string::npos);
}

TEST(TraceTest, ExplicitEndIsIdempotent) {
  Tracer tracer(EnabledOptions());
  {
    TraceSpan span(&tracer, "test", "once");
    span.End();
    span.End();  // No-op; the destructor must not double-record either.
  }
  EXPECT_EQ(tracer.recorded_events(), 1u);
}

TEST(TraceTest, EventOrderWithinThreadIsEndOrder) {
  Tracer tracer(EnabledOptions());
  {
    TraceSpan outer(&tracer, "test", "outer");
    TraceSpan inner(&tracer, "test", "inner");
  }  // inner ends (and records) before outer.
  const std::string json = tracer.ExportChromeTrace();
  const size_t inner_pos = json.find("\"name\":\"inner\"");
  const size_t outer_pos = json.find("\"name\":\"outer\"");
  ASSERT_NE(inner_pos, std::string::npos);
  ASSERT_NE(outer_pos, std::string::npos);
  EXPECT_LT(inner_pos, outer_pos);
}

TEST(TraceTest, ConcurrentThreadsEachGetATrackAndLoseNoEvents) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  Tracer tracer(EnabledOptions(/*ring_capacity=*/kSpansPerThread + 16));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span(&tracer, "worker", "unit");
        span.AddArg("i", i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(tracer.recorded_events(),
            static_cast<uint64_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(tracer.dropped_events(), 0u);
  const std::string json = tracer.ExportChromeTrace();
  EXPECT_TRUE(BracesBalanced(json));
  // One thread_name metadata event per recording thread, and every span
  // present.
  EXPECT_EQ(CountOccurrences(json, "\"thread_name\""), kThreads);
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"unit\""),
            kThreads * kSpansPerThread);
}

TEST(TraceTest, RingWrapKeepsNewestAndCountsDropped) {
  constexpr size_t kCapacity = 64;
  Tracer tracer(EnabledOptions(kCapacity));
  constexpr int kTotal = 200;
  for (int i = 0; i < kTotal; ++i) {
    TraceSpan span(&tracer, "test", "wrap");
    span.AddArg("seq", i);
  }
  EXPECT_EQ(tracer.recorded_events(), static_cast<uint64_t>(kTotal));
  EXPECT_EQ(tracer.dropped_events(), static_cast<uint64_t>(kTotal) - kCapacity);
  const std::string json = tracer.ExportChromeTrace();
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"wrap\""),
            static_cast<int>(kCapacity));
  // The survivors are the NEWEST events (136 dropped, 136..199 kept, in
  // oldest-first order).
  EXPECT_EQ(json.find("\"seq\":0}"), std::string::npos);
  EXPECT_NE(json.find("\"seq\":199"), std::string::npos);
  const size_t first_kept = json.find("\"seq\":136");
  const size_t last_kept = json.find("\"seq\":199");
  ASSERT_NE(first_kept, std::string::npos);
  EXPECT_LT(first_kept, last_kept);
}

TEST(TraceTest, SamplingKeepsEveryNth) {
  Tracer tracer(EnabledOptions(1 << 12, /*sample_period=*/4));
  for (int i = 0; i < 100; ++i) {
    TraceSpan span(&tracer, "test", "sampled");
  }
  EXPECT_EQ(tracer.recorded_events(), 25u);
}

TEST(TraceTest, SetEnabledFlipsRecordingAtRuntime) {
  Tracer tracer;  // Starts disabled.
  { TraceSpan span(&tracer, "test", "before"); }
  tracer.SetEnabled(true);
  { TraceSpan span(&tracer, "test", "during"); }
  tracer.SetEnabled(false);
  { TraceSpan span(&tracer, "test", "after"); }
  EXPECT_EQ(tracer.recorded_events(), 1u);
  const std::string json = tracer.ExportChromeTrace();
  EXPECT_NE(json.find("\"name\":\"during\""), std::string::npos);
  EXPECT_EQ(json.find("\"name\":\"before\""), std::string::npos);
  EXPECT_EQ(json.find("\"name\":\"after\""), std::string::npos);
}

TEST(TraceTest, ThreadOutlivingOneTracerNeverWritesIntoTheNext) {
  // The TLS buffer cache is keyed by a process-unique tracer id: after
  // tracer A dies, the same OS thread recording through tracer B must
  // re-register, not dereference A's freed buffer.
  std::unique_ptr<Tracer> first = std::make_unique<Tracer>(EnabledOptions());
  std::unique_ptr<Tracer> second;
  std::thread worker([&] {
    { TraceSpan span(first.get(), "test", "first-tracer"); }
    first.reset();
    second = std::make_unique<Tracer>(EnabledOptions());
    { TraceSpan span(second.get(), "test", "second-tracer"); }
  });
  worker.join();
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->recorded_events(), 1u);
  EXPECT_NE(second->ExportChromeTrace().find("\"second-tracer\""),
            std::string::npos);
}

}  // namespace
}  // namespace moqo
