// Copyright (c) 2026 moqo authors. MIT license.
//
// MetricsRegistry: Prometheus text-exposition format — HELP/TYPE headers
// (one per metric family), label rendering and escaping, cumulative
// histogram series, and live sampler evaluation at render time.

#include "obs/metrics.h"

#include <string>

#include "gtest/gtest.h"
#include "obs/histogram.h"

namespace moqo {
namespace {

TEST(MetricsTest, CounterAndGaugeRenderWithHeaders) {
  MetricsRegistry registry;
  registry.AddCounter("moqo_requests_total", "Requests seen",
                      [] { return 41.0; });
  registry.AddGauge("moqo_inflight", "Requests in flight",
                    [] { return 3.0; });
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP moqo_requests_total Requests seen\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE moqo_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("moqo_requests_total 41\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE moqo_inflight gauge\n"), std::string::npos);
  EXPECT_NE(text.find("moqo_inflight 3\n"), std::string::npos);
}

TEST(MetricsTest, SamplersAreEvaluatedAtRenderTime) {
  MetricsRegistry registry;
  double value = 1.0;
  registry.AddGauge("moqo_live", "Live value", [&value] { return value; });
  EXPECT_NE(registry.RenderPrometheus().find("moqo_live 1\n"),
            std::string::npos);
  value = 2.0;
  EXPECT_NE(registry.RenderPrometheus().find("moqo_live 2\n"),
            std::string::npos);
}

TEST(MetricsTest, LabelFamilyEmitsOneHeader) {
  MetricsRegistry registry;
  for (const char* algorithm : {"EXA", "RTA", "IRA"}) {
    registry.AddCounter("moqo_runs_total", "Runs by algorithm",
                        {{"algorithm", algorithm}}, [] { return 5.0; });
  }
  const std::string text = registry.RenderPrometheus();
  // The format requires exactly one HELP/TYPE per family.
  size_t headers = 0;
  for (size_t pos = text.find("# TYPE moqo_runs_total");
       pos != std::string::npos;
       pos = text.find("# TYPE moqo_runs_total", pos + 1)) {
    ++headers;
  }
  EXPECT_EQ(headers, 1u);
  EXPECT_NE(text.find("moqo_runs_total{algorithm=\"EXA\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("moqo_runs_total{algorithm=\"RTA\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("moqo_runs_total{algorithm=\"IRA\"} 5\n"),
            std::string::npos);
}

TEST(MetricsTest, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.AddGauge("moqo_weird", "Escaping", {{"q", "a\"b\\c"}},
                    [] { return 1.0; });
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("moqo_weird{q=\"a\\\"b\\\\c\"} 1\n"),
            std::string::npos);
}

TEST(MetricsTest, HistogramRendersCumulativeBucketsSumAndCount) {
  MetricsRegistry registry;
  LatencyHistogram histogram;
  histogram.Record(0.3);   // <= 0.5
  histogram.Record(2.0);   // <= 5
  histogram.Record(30.0);  // <= 50
  histogram.Record(7000.0);  // only +Inf
  registry.AddHistogram("moqo_latency_ms", "Latency",
                        [&histogram] { return histogram.Snapshot(); });
  const std::string text = registry.RenderPrometheus();

  EXPECT_NE(text.find("# TYPE moqo_latency_ms histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("moqo_latency_ms_bucket{le=\"0.5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("moqo_latency_ms_bucket{le=\"5\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("moqo_latency_ms_bucket{le=\"50\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("moqo_latency_ms_bucket{le=\"5000\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("moqo_latency_ms_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("moqo_latency_ms_count 4\n"), std::string::npos);
  // Sum: 0.3 + 2 + 30 + 7000 = 7032.3.
  EXPECT_NE(text.find("moqo_latency_ms_sum 7032.3\n"), std::string::npos);
}

TEST(MetricsTest, HistogramBucketsAreMonotone) {
  MetricsRegistry registry;
  LatencyHistogram histogram;
  for (int i = 1; i <= 100; ++i) histogram.Record(i * 1.0);
  registry.AddHistogram("moqo_mono_ms", "Monotonicity",
                        [&histogram] { return histogram.Snapshot(); });
  const std::string text = registry.RenderPrometheus();
  // Parse the rendered bucket counts back out and check cumulativity.
  long previous = -1;
  size_t pos = 0;
  int buckets_seen = 0;
  while ((pos = text.find("moqo_mono_ms_bucket{le=", pos)) !=
         std::string::npos) {
    const size_t space = text.find(' ', pos);
    const size_t eol = text.find('\n', space);
    const long value = std::stol(text.substr(space + 1, eol - space - 1));
    EXPECT_GE(value, previous);
    previous = value;
    pos = eol;
    ++buckets_seen;
  }
  EXPECT_EQ(buckets_seen, 11);  // 10 finite bounds + +Inf.
  EXPECT_EQ(previous, 100);     // +Inf bucket holds everything.
}

}  // namespace
}  // namespace moqo
