// Copyright (c) 2026 moqo authors. MIT license.
//
// Service-level observability (PR 6): the instrumented request path end to
// end. With tracing on, an anytime session's exported Chrome trace must
// contain the request -> DP-level -> memo-probe -> rung-publish span chain;
// stats ToString must report p50/p95/p99; the Prometheus exposition must
// cover counters, occupancy gauges, and latency histograms; and the
// slow-query log must retain the worst requests.

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/workload.h"
#include "service/optimization_service.h"
#include "testing/test_helpers.h"

namespace moqo {
namespace {

using testing::MakeStarQuery;
using testing::MakeTinyCatalog;
using testing::SmallOperatorSpace;

ServiceOptions TracedServiceOptions(int workers) {
  ServiceOptions options;
  options.num_workers = workers;
  options.operators = SmallOperatorSpace();
  options.trace.enabled = true;
  return options;
}

ObjectiveSet FirstObjectives(int num_objectives) {
  std::vector<Objective> objectives(kAllObjectives.begin(),
                                    kAllObjectives.begin() + num_objectives);
  return ObjectiveSet(objectives);
}

/// RTA-routed star spec; the explicit override keeps the session ladder
/// multi-rung on a query this small.
ProblemSpec RtaStarSpec(const Catalog* catalog, int num_dims,
                        int num_objectives, double alpha) {
  ProblemSpec spec;
  spec.query = std::make_shared<Query>(MakeStarQuery(catalog, num_dims));
  spec.objectives = FirstObjectives(num_objectives);
  spec.algorithm = AlgorithmKind::kRta;
  spec.alpha = alpha;
  return spec;
}

ServiceRequest StarRequest(const Catalog* catalog, int num_dims,
                           int num_objectives) {
  ServiceRequest request;
  request.spec.query =
      std::make_shared<Query>(MakeStarQuery(catalog, num_dims));
  request.spec.objectives = FirstObjectives(num_objectives);
  request.preference.weights = WeightVector::Uniform(num_objectives);
  return request;
}

TEST(ObservabilityTest, SessionTraceContainsTheWholeSpanChain) {
  Catalog catalog = MakeTinyCatalog();
  OptimizationService service(TracedServiceOptions(2));

  SessionOptions session_options;
  session_options.alpha_start = 3.0;
  session_options.max_steps = 3;
  auto session =
      service.OpenFrontier(RtaStarSpec(&catalog, 3, 3, 1.25), session_options);
  ASSERT_NE(session, nullptr);
  ASSERT_TRUE(session->AwaitTarget());
  session->Cancel();

  EXPECT_GT(service.tracer()->recorded_events(), 0u);
  // AwaitTarget wakes on the done publish, but worker spans record on
  // destruction just after — and since the rung split (PR 7) each rung is
  // its own pool task, so rung 0's "request"/"pool.task" pair can close on
  // a different (possibly descheduled) worker than the final rung that
  // woke us. Poll until both the rung-0 request span and some pool.task
  // span are in the export.
  const auto complete = [](const std::string& t) {
    return t.find("\"name\":\"pool.task\"") != std::string::npos &&
           t.find("\"name\":\"request\"") != std::string::npos;
  };
  std::string trace = service.tracer()->ExportChromeTrace();
  for (int i = 0; i < 5000 && !complete(trace); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    trace = service.tracer()->ExportChromeTrace();
  }
  // The acceptance chain: request -> DP level -> memo probe -> rung
  // publish, plus the session's first-frontier marker.
  EXPECT_NE(trace.find("\"name\":\"request\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"request.open\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"dp.level\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"memo.probe\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"rung.publish\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"session.first_frontier\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"optimize\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"pool.task\""), std::string::npos);
  // quick_first defaults on, so the synchronous prelude span exists too.
  EXPECT_NE(trace.find("\"name\":\"quick.prelude\""), std::string::npos);
  // Chrome trace-event envelope.
  EXPECT_EQ(trace.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  EXPECT_EQ(trace.substr(trace.size() - 2), "]}");
}

TEST(ObservabilityTest, TracingDisabledByDefaultRecordsNothing) {
  Catalog catalog = MakeTinyCatalog();
  ServiceOptions options;
  options.num_workers = 2;
  options.operators = SmallOperatorSpace();
  OptimizationService service(options);

  const ServiceResponse response =
      service.SubmitAndWait(StarRequest(&catalog, 2, 2));
  ASSERT_EQ(response.status, ResponseStatus::kCompleted);
  EXPECT_FALSE(service.tracer()->enabled());
  EXPECT_EQ(service.tracer()->recorded_events(), 0u);
}

TEST(ObservabilityTest, StatsToStringReportsQuantilesAndSlowQueries) {
  Catalog catalog = MakeTinyCatalog();
  ServiceOptions options;
  options.num_workers = 2;
  options.operators = SmallOperatorSpace();
  OptimizationService service(options);

  for (int dims = 1; dims <= 3; ++dims) {
    const ServiceResponse response =
        service.SubmitAndWait(StarRequest(&catalog, dims, 2));
    ASSERT_EQ(response.status, ResponseStatus::kCompleted);
  }

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_FALSE(stats.slow_queries.empty());
  // Worst first, and every entry carries the breakdown.
  for (size_t i = 1; i < stats.slow_queries.size(); ++i) {
    EXPECT_GE(stats.slow_queries[i - 1].total_ms,
              stats.slow_queries[i].total_ms);
  }
  for (const SlowQueryEntry& entry : stats.slow_queries) {
    EXPECT_NE(entry.signature, 0u);
    EXPECT_GT(entry.total_ms, 0);
    EXPECT_STRNE(entry.algorithm, "");
    EXPECT_STRNE(entry.phase, "");
  }

  const std::string text = stats.ToString();
  EXPECT_NE(text.find("p50_ms="), std::string::npos);
  EXPECT_NE(text.find("p95_ms="), std::string::npos);
  EXPECT_NE(text.find("p99_ms="), std::string::npos);
  EXPECT_NE(text.find("pool: queue_depth="), std::string::npos);
  EXPECT_NE(text.find("step_latency: runs="), std::string::npos);
  EXPECT_NE(text.find("first_frontier: sessions="), std::string::npos);
  EXPECT_NE(text.find("slow_queries (worst"), std::string::npos);
}

TEST(ObservabilityTest, FirstFrontierHistogramCountsSessions) {
  Catalog catalog = MakeTinyCatalog();
  OptimizationService service(TracedServiceOptions(2));

  SessionOptions session_options;
  session_options.alpha_start = 2.0;
  session_options.max_steps = 2;
  auto session =
      service.OpenFrontier(RtaStarSpec(&catalog, 2, 3, 1.25), session_options);
  ASSERT_NE(session, nullptr);
  // quick_first publishes before OpenFrontier returns, so the histogram
  // has its sample already.
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.first_frontier_latency.count, 1u);
  EXPECT_GT(stats.first_frontier_latency.max_ms, 0);
  session->AwaitTarget();
  session->Cancel();
}

TEST(ObservabilityTest, MetricsTextCoversCountersOccupancyAndHistograms) {
  Catalog catalog = MakeTinyCatalog();
  ServiceOptions options;
  options.num_workers = 2;
  options.operators = SmallOperatorSpace();
  OptimizationService service(options);

  // One miss then one exact hit so cache counters are nonzero.
  ASSERT_EQ(service.SubmitAndWait(StarRequest(&catalog, 2, 2)).status,
            ResponseStatus::kCompleted);
  ASSERT_EQ(service.SubmitAndWait(StarRequest(&catalog, 2, 2)).status,
            ResponseStatus::kCompleted);

  const std::string text = service.MetricsText();
  // Counters with families.
  EXPECT_NE(text.find("# TYPE moqo_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("moqo_cache_lookups_total{result=\"hit\"} "),
            std::string::npos);
  EXPECT_NE(text.find("moqo_cache_lookups_total{result=\"miss\"} "),
            std::string::npos);
  EXPECT_NE(text.find("moqo_memo_lookups_total{result=\"hit\"} "),
            std::string::npos);
  // Occupancy gauges.
  EXPECT_NE(text.find("# TYPE moqo_cache_entries gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE moqo_pool_queue_depth gauge"),
            std::string::npos);
  // Histograms: the per-algorithm family and the pool queue wait.
  EXPECT_NE(text.find("# TYPE moqo_request_latency_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("moqo_request_latency_ms_bucket{algorithm="),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("moqo_pool_queue_wait_ms_sum"), std::string::npos);
  EXPECT_NE(text.find("moqo_pool_queue_wait_ms_count"), std::string::npos);
  EXPECT_NE(text.find("# TYPE moqo_first_frontier_ms histogram"),
            std::string::npos);
  // The completed counter reflects the two requests at render time.
  EXPECT_NE(text.find("moqo_completed_total 2"), std::string::npos);
}

TEST(ObservabilityTest, SlowQueryLogHonorsConfiguredCapacity) {
  Catalog catalog = MakeTinyCatalog();
  ServiceOptions options;
  options.num_workers = 1;
  options.operators = SmallOperatorSpace();
  options.enable_cache = false;  // Every request optimizes (and is logged).
  options.slow_query_log_size = 2;
  OptimizationService service(options);

  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(service.SubmitAndWait(StarRequest(&catalog, 2, 2)).status,
              ResponseStatus::kCompleted);
  }
  EXPECT_LE(service.Stats().slow_queries.size(), 2u);
  EXPECT_FALSE(service.Stats().slow_queries.empty());
}

}  // namespace
}  // namespace moqo
