// Copyright (c) 2026 moqo authors. MIT license.

#include "service/signature.h"

#include <gtest/gtest.h>

#include "query/canonical.h"
#include "query/tpch_queries.h"
#include "testing/test_helpers.h"

namespace moqo {
namespace {

using testing::MakeStarQuery;
using testing::MakeTinyCatalog;
using testing::SmallOptions;

ObjectiveSet FirstObjectives(int num_objectives) {
  std::vector<Objective> objectives(kAllObjectives.begin(),
                                    kAllObjectives.begin() + num_objectives);
  return ObjectiveSet(objectives);
}

TEST(SignatureTest, EqualSpecsEqualSignatures) {
  Catalog catalog = MakeTinyCatalog();
  Query query = MakeStarQuery(&catalog, 2);
  const ProblemSignature a = ComputeSignature(
      query, FirstObjectives(3), AlgorithmKind::kRta, 1.5, SmallOptions(1.5));
  const ProblemSignature b = ComputeSignature(
      query, FirstObjectives(3), AlgorithmKind::kRta, 1.5, SmallOptions(1.5));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash, b.hash);
}

TEST(SignatureTest, QueryNameAndJoinOrderDoNotMatter) {
  Catalog catalog = MakeTinyCatalog();

  Query forward(&catalog, "forward");
  int f1 = forward.AddTable("fact");
  int d1 = forward.AddTable("dim1");
  int d2 = forward.AddTable("dim2");
  forward.AddJoin(f1, "f_d1", d1, "d1_key");
  forward.AddJoin(f1, "f_d2", d2, "d2_key");

  // Same structure, different name, joins added in reverse order and with
  // swapped endpoint order.
  Query reversed(&catalog, "reversed");
  int f2 = reversed.AddTable("fact");
  int e1 = reversed.AddTable("dim1");
  int e2 = reversed.AddTable("dim2");
  reversed.AddJoin(e2, "d2_key", f2, "f_d2");
  reversed.AddJoin(e1, "d1_key", f2, "f_d1");

  EXPECT_EQ(CanonicalQueryEncoding(forward), CanonicalQueryEncoding(reversed));
  EXPECT_EQ(ComputeSignature(forward, FirstObjectives(3), AlgorithmKind::kExa,
                             1.0, SmallOptions()),
            ComputeSignature(reversed, FirstObjectives(3), AlgorithmKind::kExa,
                             1.0, SmallOptions()));
}

TEST(SignatureTest, CatalogScaleChangesSignature) {
  // Structurally identical queries over differently scaled catalogs must
  // not share cached plans: cardinalities drive the cost model.
  Catalog small = Catalog::TpcH(0.01);
  Catalog large = Catalog::TpcH(1.0);
  Query q_small = MakeTpcHQuery(&small, 3);
  Query q_large = MakeTpcHQuery(&large, 3);
  EXPECT_NE(CanonicalQueryEncoding(q_small), CanonicalQueryEncoding(q_large));
  EXPECT_NE(ComputeSignature(q_small, FirstObjectives(3), AlgorithmKind::kRta,
                             1.5, SmallOptions()),
            ComputeSignature(q_large, FirstObjectives(3), AlgorithmKind::kRta,
                             1.5, SmallOptions()));
}

TEST(SignatureTest, StructureChangesChangeSignature) {
  Catalog catalog = MakeTinyCatalog();
  Query two = MakeStarQuery(&catalog, 2);
  Query three = MakeStarQuery(&catalog, 3);
  EXPECT_NE(ComputeSignature(two, FirstObjectives(3), AlgorithmKind::kRta,
                             1.5, SmallOptions()),
            ComputeSignature(three, FirstObjectives(3), AlgorithmKind::kRta,
                             1.5, SmallOptions()));
}

TEST(SignatureTest, SpecParametersChangeSignature) {
  Catalog catalog = MakeTinyCatalog();
  Query query = MakeStarQuery(&catalog, 2);
  const ProblemSignature ref = ComputeSignature(
      query, FirstObjectives(3), AlgorithmKind::kRta, 1.5, SmallOptions());

  const ObjectiveSet other_objectives(
      {Objective::kTotalTime, Objective::kEnergy,
       Objective::kBufferFootprint});
  EXPECT_NE(ComputeSignature(query, other_objectives, AlgorithmKind::kRta,
                             1.5, SmallOptions()),
            ref);

  // Same spec, different resolved algorithm.
  EXPECT_NE(ComputeSignature(query, FirstObjectives(3), AlgorithmKind::kExa,
                             1.5, SmallOptions()),
            ref);
}

TEST(SignatureTest, FrontierAlgorithmSignaturesAreAlphaFree) {
  // The PR-5 relaxed identity: for frontier-producing algorithms the
  // precision only grades the frontier, it does not change which problem
  // the frontier answers — the key is alpha-free and the PlanCache gates
  // on each entry's achieved alpha instead. The IRA stays alpha-keyed
  // (its output is tailored to precision AND preference).
  Catalog catalog = MakeTinyCatalog();
  Query query = MakeStarQuery(&catalog, 2);
  EXPECT_EQ(ComputeSignature(query, FirstObjectives(3), AlgorithmKind::kRta,
                             1.5, SmallOptions()),
            ComputeSignature(query, FirstObjectives(3), AlgorithmKind::kRta,
                             2.0, SmallOptions()));

  WeightVector uniform = WeightVector::Uniform(3);
  EXPECT_NE(ComputeSignature(query, FirstObjectives(3), AlgorithmKind::kIra,
                             1.5, SmallOptions(), &uniform),
            ComputeSignature(query, FirstObjectives(3), AlgorithmKind::kIra,
                             2.0, SmallOptions(), &uniform));
}

TEST(SignatureTest, ExtendSignatureRestoresExactAlphaIdentity) {
  // Coalescing and the session registry must never mix precisions: the
  // extended signature re-encodes alpha bit-exactly on top of the relaxed
  // base key.
  Catalog catalog = MakeTinyCatalog();
  Query query = MakeStarQuery(&catalog, 2);
  const ProblemSignature base = ComputeSignature(
      query, FirstObjectives(3), AlgorithmKind::kRta, 1.5, SmallOptions());
  EXPECT_EQ(ExtendSignature(base, 1.5), ExtendSignature(base, 1.5));
  EXPECT_NE(ExtendSignature(base, 1.5), ExtendSignature(base, 2.0));
  EXPECT_NE(ExtendSignature(base, 1.5), base);
}

TEST(SignatureTest, WeightsDoNotChangeFrontierAlgorithmSignatures) {
  // The core of the PR-2 redesign: for frontier-producing algorithms the
  // key is weight-free, so ANY preference shares the cached PlanSet.
  Catalog catalog = MakeTinyCatalog();
  Query query = MakeStarQuery(&catalog, 2);
  WeightVector uniform = WeightVector::Uniform(3);
  WeightVector skewed = WeightVector::Uniform(3);
  skewed[1] = 7.0;
  BoundVector no_bounds;
  BoundVector bounded = BoundVector::Unbounded(3);
  bounded[0] = 1234.5;

  for (AlgorithmKind kind : {AlgorithmKind::kExa, AlgorithmKind::kRta,
                             AlgorithmKind::kSelinger}) {
    EXPECT_FALSE(IsPreferenceDependent(kind));
    const ProblemSignature a =
        ComputeSignature(query, FirstObjectives(3), kind, 1.5, SmallOptions(),
                         &uniform, &no_bounds);
    const ProblemSignature b =
        ComputeSignature(query, FirstObjectives(3), kind, 1.5, SmallOptions(),
                         &skewed, &bounded);
    EXPECT_EQ(a, b) << AlgorithmName(kind);
  }
}

TEST(SignatureTest, PreferenceDependentAlgorithmsEncodePreference) {
  // The IRA refines toward its bounds and the weighted-sum baseline prunes
  // by weighted cost: their entries must be preference-specific.
  Catalog catalog = MakeTinyCatalog();
  Query query = MakeStarQuery(&catalog, 2);
  WeightVector uniform = WeightVector::Uniform(3);
  WeightVector skewed = WeightVector::Uniform(3);
  skewed[1] = 7.0;
  BoundVector no_bounds;
  BoundVector bounded = BoundVector::Unbounded(3);
  bounded[0] = 1234.5;

  for (AlgorithmKind kind :
       {AlgorithmKind::kIra, AlgorithmKind::kWeightedSum}) {
    EXPECT_TRUE(IsPreferenceDependent(kind));
    const ProblemSignature ref =
        ComputeSignature(query, FirstObjectives(3), kind, 1.5, SmallOptions(),
                         &uniform, &no_bounds);
    EXPECT_EQ(ComputeSignature(query, FirstObjectives(3), kind, 1.5,
                               SmallOptions(), &uniform, &no_bounds),
              ref)
        << AlgorithmName(kind);
    EXPECT_NE(ComputeSignature(query, FirstObjectives(3), kind, 1.5,
                               SmallOptions(), &skewed, &no_bounds),
              ref)
        << AlgorithmName(kind);
    EXPECT_NE(ComputeSignature(query, FirstObjectives(3), kind, 1.5,
                               SmallOptions(), &uniform, &bounded),
              ref)
        << AlgorithmName(kind);
  }
}

TEST(SignatureTest, AllUnboundedBoundsCanonicalizeToEmpty) {
  // bounds absent and bounds explicitly all-unbounded are the same
  // weighted-MOQO instance and must share cache entries (relevant only
  // for preference-dependent algorithms; frontier algorithms ignore
  // bounds in the key entirely).
  Catalog catalog = MakeTinyCatalog();
  Query query = MakeStarQuery(&catalog, 2);
  WeightVector uniform = WeightVector::Uniform(3);
  BoundVector explicit_unbounded = BoundVector::Unbounded(3);
  EXPECT_EQ(ComputeSignature(query, FirstObjectives(3), AlgorithmKind::kIra,
                             1.5, SmallOptions(), &uniform, nullptr),
            ComputeSignature(query, FirstObjectives(3), AlgorithmKind::kIra,
                             1.5, SmallOptions(), &uniform,
                             &explicit_unbounded));
}

TEST(SignatureTest, PlanSpaceSwitchesChangeSignature) {
  Catalog catalog = MakeTinyCatalog();
  Query query = MakeStarQuery(&catalog, 2);
  OptimizerOptions options = SmallOptions();
  const ProblemSignature ref = ComputeSignature(
      query, FirstObjectives(3), AlgorithmKind::kRta, 1.5, options);

  OptimizerOptions left_deep = options;
  left_deep.bushy = false;
  EXPECT_NE(ComputeSignature(query, FirstObjectives(3), AlgorithmKind::kRta,
                             1.5, left_deep),
            ref);

  OptimizerOptions no_sampling = options;
  no_sampling.operators.sampling_rates = {};
  EXPECT_NE(ComputeSignature(query, FirstObjectives(3), AlgorithmKind::kRta,
                             1.5, no_sampling),
            ref);
}

}  // namespace
}  // namespace moqo
