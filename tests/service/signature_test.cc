// Copyright (c) 2026 moqo authors. MIT license.

#include "service/signature.h"

#include <gtest/gtest.h>

#include "query/canonical.h"
#include "query/tpch_queries.h"
#include "testing/test_helpers.h"

namespace moqo {
namespace {

using testing::MakeStarQuery;
using testing::MakeTinyCatalog;
using testing::SmallOptions;

MOQOProblem MakeProblem(const Query* query, int num_objectives) {
  MOQOProblem problem;
  problem.query = query;
  std::vector<Objective> objectives(kAllObjectives.begin(),
                                    kAllObjectives.begin() + num_objectives);
  problem.objectives = ObjectiveSet(objectives);
  problem.weights = WeightVector::Uniform(num_objectives);
  return problem;
}

TEST(SignatureTest, EqualProblemsEqualSignatures) {
  Catalog catalog = MakeTinyCatalog();
  Query query = MakeStarQuery(&catalog, 2);
  MOQOProblem problem = MakeProblem(&query, 3);
  const ProblemSignature a = ComputeSignature(
      problem, AlgorithmKind::kRta, 1.5, SmallOptions(1.5));
  const ProblemSignature b = ComputeSignature(
      problem, AlgorithmKind::kRta, 1.5, SmallOptions(1.5));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash, b.hash);
}

TEST(SignatureTest, QueryNameAndJoinOrderDoNotMatter) {
  Catalog catalog = MakeTinyCatalog();

  Query forward(&catalog, "forward");
  int f1 = forward.AddTable("fact");
  int d1 = forward.AddTable("dim1");
  int d2 = forward.AddTable("dim2");
  forward.AddJoin(f1, "f_d1", d1, "d1_key");
  forward.AddJoin(f1, "f_d2", d2, "d2_key");

  // Same structure, different name, joins added in reverse order and with
  // swapped endpoint order.
  Query reversed(&catalog, "reversed");
  int f2 = reversed.AddTable("fact");
  int e1 = reversed.AddTable("dim1");
  int e2 = reversed.AddTable("dim2");
  reversed.AddJoin(e2, "d2_key", f2, "f_d2");
  reversed.AddJoin(e1, "d1_key", f2, "f_d1");

  EXPECT_EQ(CanonicalQueryEncoding(forward), CanonicalQueryEncoding(reversed));

  MOQOProblem pa = MakeProblem(&forward, 3);
  MOQOProblem pb = MakeProblem(&reversed, 3);
  EXPECT_EQ(ComputeSignature(pa, AlgorithmKind::kExa, 1.0, SmallOptions()),
            ComputeSignature(pb, AlgorithmKind::kExa, 1.0, SmallOptions()));
}

TEST(SignatureTest, CatalogScaleChangesSignature) {
  // Structurally identical queries over differently scaled catalogs must
  // not share cached plans: cardinalities drive the cost model.
  Catalog small = Catalog::TpcH(0.01);
  Catalog large = Catalog::TpcH(1.0);
  Query q_small = MakeTpcHQuery(&small, 3);
  Query q_large = MakeTpcHQuery(&large, 3);
  EXPECT_NE(CanonicalQueryEncoding(q_small), CanonicalQueryEncoding(q_large));

  MOQOProblem pa = MakeProblem(&q_small, 3);
  MOQOProblem pb = MakeProblem(&q_large, 3);
  EXPECT_NE(ComputeSignature(pa, AlgorithmKind::kRta, 1.5, SmallOptions()),
            ComputeSignature(pb, AlgorithmKind::kRta, 1.5, SmallOptions()));
}

TEST(SignatureTest, StructureChangesChangeSignature) {
  Catalog catalog = MakeTinyCatalog();
  Query two = MakeStarQuery(&catalog, 2);
  Query three = MakeStarQuery(&catalog, 3);
  MOQOProblem pa = MakeProblem(&two, 3);
  MOQOProblem pb = MakeProblem(&three, 3);
  EXPECT_NE(ComputeSignature(pa, AlgorithmKind::kRta, 1.5, SmallOptions()),
            ComputeSignature(pb, AlgorithmKind::kRta, 1.5, SmallOptions()));
}

TEST(SignatureTest, ParametersChangeSignature) {
  Catalog catalog = MakeTinyCatalog();
  Query query = MakeStarQuery(&catalog, 2);
  MOQOProblem base = MakeProblem(&query, 3);
  const ProblemSignature ref =
      ComputeSignature(base, AlgorithmKind::kRta, 1.5, SmallOptions());

  MOQOProblem other_objectives = base;
  other_objectives.objectives =
      ObjectiveSet({Objective::kTotalTime, Objective::kEnergy,
                    Objective::kBufferFootprint});
  EXPECT_NE(ComputeSignature(other_objectives, AlgorithmKind::kRta, 1.5,
                             SmallOptions()),
            ref);

  MOQOProblem other_weights = base;
  other_weights.weights[1] = 7.0;
  EXPECT_NE(ComputeSignature(other_weights, AlgorithmKind::kRta, 1.5,
                             SmallOptions()),
            ref);

  MOQOProblem bounded = base;
  bounded.bounds = BoundVector::Unbounded(3);
  bounded.bounds[0] = 1234.5;
  EXPECT_NE(ComputeSignature(bounded, AlgorithmKind::kRta, 1.5,
                             SmallOptions()),
            ref);

  // Same problem, different resolved algorithm or alpha.
  EXPECT_NE(ComputeSignature(base, AlgorithmKind::kExa, 1.5, SmallOptions()),
            ref);
  EXPECT_NE(ComputeSignature(base, AlgorithmKind::kRta, 2.0, SmallOptions()),
            ref);
}

TEST(SignatureTest, AllUnboundedBoundsCanonicalizeToEmpty) {
  // bounds absent and bounds explicitly all-unbounded are the same
  // weighted-MOQO instance and must share cache entries.
  Catalog catalog = MakeTinyCatalog();
  Query query = MakeStarQuery(&catalog, 2);
  MOQOProblem no_bounds = MakeProblem(&query, 3);
  MOQOProblem explicit_unbounded = MakeProblem(&query, 3);
  explicit_unbounded.bounds = BoundVector::Unbounded(3);
  EXPECT_EQ(ComputeSignature(no_bounds, AlgorithmKind::kRta, 1.5,
                             SmallOptions()),
            ComputeSignature(explicit_unbounded, AlgorithmKind::kRta, 1.5,
                             SmallOptions()));
}

TEST(SignatureTest, WeightBucketingCollapsesNearbyWeights) {
  Catalog catalog = MakeTinyCatalog();
  Query query = MakeStarQuery(&catalog, 2);
  MOQOProblem a = MakeProblem(&query, 3);
  MOQOProblem b = MakeProblem(&query, 3);
  b.weights[0] += 1e-9;  // Far below the default 1e-4 bucket.

  SignatureOptions bucketed;
  EXPECT_EQ(ComputeSignature(a, AlgorithmKind::kRta, 1.5, SmallOptions(),
                             bucketed),
            ComputeSignature(b, AlgorithmKind::kRta, 1.5, SmallOptions(),
                             bucketed));

  SignatureOptions exact;
  exact.weight_bucket = 0;
  exact.bound_bucket_rel = 0;
  EXPECT_NE(ComputeSignature(a, AlgorithmKind::kRta, 1.5, SmallOptions(),
                             exact),
            ComputeSignature(b, AlgorithmKind::kRta, 1.5, SmallOptions(),
                             exact));
}

TEST(SignatureTest, PlanSpaceSwitchesChangeSignature) {
  Catalog catalog = MakeTinyCatalog();
  Query query = MakeStarQuery(&catalog, 2);
  MOQOProblem problem = MakeProblem(&query, 3);
  OptimizerOptions options = SmallOptions();
  const ProblemSignature ref =
      ComputeSignature(problem, AlgorithmKind::kRta, 1.5, options);

  OptimizerOptions left_deep = options;
  left_deep.bushy = false;
  EXPECT_NE(ComputeSignature(problem, AlgorithmKind::kRta, 1.5, left_deep),
            ref);

  OptimizerOptions no_sampling = options;
  no_sampling.operators.sampling_rates = {};
  EXPECT_NE(ComputeSignature(problem, AlgorithmKind::kRta, 1.5, no_sampling),
            ref);
}

}  // namespace
}  // namespace moqo
