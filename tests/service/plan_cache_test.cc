// Copyright (c) 2026 moqo authors. MIT license.

#include "service/plan_cache.h"

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/plan_set.h"
#include "util/arena.h"

namespace moqo {
namespace {

ProblemSignature Sig(const std::string& key) {
  ProblemSignature signature;
  signature.key = key;
  uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : key) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  signature.hash = hash;
  return signature;
}

std::shared_ptr<const CachedFrontier> Result(double weighted_cost) {
  auto result = std::make_shared<OptimizerResult>();
  result->weighted_cost = weighted_cost;
  auto cached = std::make_shared<CachedFrontier>();
  cached->result = std::move(result);
  return cached;
}

TEST(PlanCacheTest, InsertLookupRoundtrip) {
  PlanCache cache;
  EXPECT_EQ(cache.Lookup(Sig("a")), nullptr);
  cache.Insert(Sig("a"), Result(1.0));
  auto hit = cache.Lookup(Sig("a"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->result->weighted_cost, 1.0);

  const PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PlanCacheTest, LruEvictionOrder) {
  PlanCache::Options options;
  options.capacity = 2;
  options.shards = 1;  // Single shard: eviction order is global LRU.
  PlanCache cache(options);

  cache.Insert(Sig("a"), Result(1));
  cache.Insert(Sig("b"), Result(2));
  ASSERT_NE(cache.Lookup(Sig("a")), nullptr);  // a is now most recent.
  cache.Insert(Sig("c"), Result(3));           // Evicts b.

  EXPECT_NE(cache.Lookup(Sig("a")), nullptr);
  EXPECT_EQ(cache.Lookup(Sig("b")), nullptr);
  EXPECT_NE(cache.Lookup(Sig("c")), nullptr);
  EXPECT_EQ(cache.GetStats().evictions, 1u);
  EXPECT_EQ(cache.GetStats().entries, 2u);
}

TEST(PlanCacheTest, ReinsertRefreshesValueWithoutEviction) {
  PlanCache::Options options;
  options.capacity = 2;
  options.shards = 1;
  PlanCache cache(options);

  cache.Insert(Sig("a"), Result(1));
  cache.Insert(Sig("b"), Result(2));
  cache.Insert(Sig("a"), Result(10));  // Refresh, no eviction.

  EXPECT_EQ(cache.GetStats().evictions, 0u);
  auto hit = cache.Lookup(Sig("a"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->result->weighted_cost, 10.0);
  EXPECT_NE(cache.Lookup(Sig("b")), nullptr);
}

TEST(PlanCacheTest, ShardCountRoundsToPowerOfTwo) {
  PlanCache::Options options;
  options.shards = 5;
  PlanCache cache(options);
  EXPECT_EQ(cache.num_shards(), 8);
}

TEST(PlanCacheTest, EvictedEntryStaysAliveThroughSharedPtr) {
  PlanCache::Options options;
  options.capacity = 1;
  options.shards = 1;
  PlanCache cache(options);

  cache.Insert(Sig("a"), Result(1));
  auto held = cache.Lookup(Sig("a"));
  cache.Insert(Sig("b"), Result(2));  // Evicts a.
  EXPECT_EQ(cache.Lookup(Sig("a")), nullptr);
  ASSERT_NE(held, nullptr);  // The response's reference keeps it valid.
  EXPECT_EQ(held->result->weighted_cost, 1.0);
}

/// The exact bytes the cache accounts for one entry holding a copy of
/// `frontier` under key `signature`: measured by inserting into a scratch
/// single-shard cache (entry sizes depend on PlanSet arena growth and
/// key/index overhead, so tests derive budgets instead of assuming them).
size_t MeasuredEntryBytes(const ProblemSignature& signature,
                          const std::shared_ptr<const CachedFrontier>& f) {
  PlanCache::Options options;
  options.shards = 1;
  PlanCache scratch(options);
  scratch.Insert(signature, f);
  return scratch.GetStats().bytes;
}

/// A CachedFrontier holding a real PlanSet with `plans` frontier entries.
std::shared_ptr<const CachedFrontier> SizedResult(int plans) {
  Arena arena;
  ParetoSet set;
  for (int i = 0; i < plans; ++i) {
    PlanNode* plan = arena.New<PlanNode>();
    plan->cost = CostVector(2);
    plan->cost[0] = 1.0 + i;
    plan->cost[1] = 100.0 - i;
    set.Prune(plan);
  }
  set.Seal();
  auto result = std::make_shared<OptimizerResult>();
  result->plan_set = PlanSet::FromParetoSet(set);
  auto cached = std::make_shared<CachedFrontier>();
  cached->result = std::move(result);
  return cached;
}

TEST(PlanCacheTest, ByteBudgetEvictsLruBeforeEntryCap) {
  const size_t unit = MeasuredEntryBytes(Sig("a"), SizedResult(4));
  ASSERT_GT(unit, 0u);

  PlanCache::Options options;
  options.capacity = 1024;  // Entry cap far away: bytes must drive.
  options.capacity_bytes = 5 * unit / 2;  // Room for two entries, not three.
  options.shards = 1;
  PlanCache cache(options);

  cache.Insert(Sig("a"), SizedResult(4));
  cache.Insert(Sig("b"), SizedResult(4));
  EXPECT_EQ(cache.GetStats().evictions, 0u);
  ASSERT_NE(cache.Lookup(Sig("a")), nullptr);  // a most recent.
  cache.Insert(Sig("c"), SizedResult(4));      // Evicts b (LRU) by bytes.

  EXPECT_NE(cache.Lookup(Sig("a")), nullptr);
  EXPECT_EQ(cache.Lookup(Sig("b")), nullptr);
  EXPECT_NE(cache.Lookup(Sig("c")), nullptr);
  const PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, options.capacity_bytes);
}

TEST(PlanCacheTest, OversizedEntryStillCachedAlone) {
  const size_t unit = MeasuredEntryBytes(Sig("a"), SizedResult(4));

  PlanCache::Options options;
  options.capacity = 1024;
  options.capacity_bytes = unit / 2;  // Smaller than any single entry.
  options.shards = 1;
  PlanCache cache(options);

  cache.Insert(Sig("a"), SizedResult(4));
  EXPECT_NE(cache.Lookup(Sig("a")), nullptr);
  cache.Insert(Sig("b"), SizedResult(4));  // Evicts a, stored anyway.
  EXPECT_EQ(cache.Lookup(Sig("a")), nullptr);
  EXPECT_NE(cache.Lookup(Sig("b")), nullptr);
  EXPECT_EQ(cache.GetStats().entries, 1u);
}

TEST(PlanCacheTest, GrownRefreshShedsColderEntriesToStayInBudget) {
  const size_t unit = MeasuredEntryBytes(Sig("a"), SizedResult(4));

  PlanCache::Options options;
  options.capacity = 1024;
  options.capacity_bytes = 5 * unit / 2;  // Two units fit, three do not.
  options.shards = 1;
  PlanCache cache(options);

  cache.Insert(Sig("a"), SizedResult(4));
  cache.Insert(Sig("b"), SizedResult(4));
  // Refresh b with a ~2x bigger value (two arena blocks): a must be shed
  // to keep the shard within budget; the refreshed entry itself survives.
  cache.Insert(Sig("b"), SizedResult(800));
  EXPECT_EQ(cache.Lookup(Sig("a")), nullptr);
  EXPECT_NE(cache.Lookup(Sig("b")), nullptr);
  EXPECT_EQ(cache.GetStats().entries, 1u);
}

TEST(PlanCacheTest, EntryCapRemainsSecondaryLimit) {
  PlanCache::Options options;
  options.capacity = 2;
  options.capacity_bytes = size_t{1} << 40;  // Bytes never bind.
  options.shards = 1;
  PlanCache cache(options);

  cache.Insert(Sig("a"), SizedResult(1));
  cache.Insert(Sig("b"), SizedResult(1));
  cache.Insert(Sig("c"), SizedResult(1));  // Entry cap evicts a.
  EXPECT_EQ(cache.GetStats().evictions, 1u);
  EXPECT_EQ(cache.Lookup(Sig("a")), nullptr);
}

TEST(PlanCacheTest, StatsTrackBytesAndFrontierPlans) {
  PlanCache cache;
  cache.Insert(Sig("a"), SizedResult(3));
  cache.Insert(Sig("b"), SizedResult(5));
  const PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.frontier_plans, 8u);
  EXPECT_GT(stats.bytes, 0u);

  // Refresh replaces the accounted size instead of double-counting.
  cache.Insert(Sig("b"), SizedResult(2));
  const PlanCache::Stats after = cache.GetStats();
  EXPECT_EQ(after.entries, 2u);
  EXPECT_EQ(after.frontier_plans, 5u);

  cache.Clear();
  EXPECT_EQ(cache.GetStats().bytes, 0u);
  EXPECT_EQ(cache.GetStats().frontier_plans, 0u);
}

std::shared_ptr<const CachedFrontier> AlphaResult(double achieved_alpha,
                                                 double weighted_cost) {
  auto cached = std::make_shared<CachedFrontier>();
  auto result = std::make_shared<OptimizerResult>();
  result->weighted_cost = weighted_cost;
  cached->result = std::move(result);
  cached->achieved_alpha = achieved_alpha;
  return cached;
}

TEST(PlanCacheTest, TighterAlphaEntryServesLooserRequest) {
  // The PR-5 relaxed identity: an alpha-approximate Pareto set is an
  // alpha'-approximate one for every alpha' >= alpha, so a tighter entry
  // answers any looser request — while a looser entry must never answer a
  // tighter one.
  PlanCache cache;
  cache.Insert(Sig("q"), AlphaResult(1.2, 7.0));

  EXPECT_NE(cache.Lookup(Sig("q"), 1.2), nullptr);   // Equal precision.
  EXPECT_NE(cache.Lookup(Sig("q"), 2.5), nullptr);   // Looser request.
  EXPECT_EQ(cache.Lookup(Sig("q"), 1.1), nullptr);   // Tighter request.
  EXPECT_NE(cache.Lookup(Sig("q")), nullptr);        // kAnyAlpha default.

  const PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);  // The refused too-loose entry is a miss.
}

TEST(PlanCacheTest, RefinementUpgradesEntryButNeverDowngrades) {
  // A session ladder re-inserts under the same key with ever tighter
  // alphas: each insert must replace. A later coarse run (same key,
  // looser alpha) must NOT overwrite the precise entry — it only
  // refreshes recency.
  PlanCache cache;
  cache.Insert(Sig("q"), AlphaResult(4.0, 1.0));
  cache.Insert(Sig("q"), AlphaResult(2.0, 2.0));  // Tighter: replaces.
  auto hit = cache.Lookup(Sig("q"), 2.0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->achieved_alpha, 2.0);
  EXPECT_EQ(hit->result->weighted_cost, 2.0);

  cache.Insert(Sig("q"), AlphaResult(3.0, 3.0));  // Looser: recency only.
  hit = cache.Lookup(Sig("q"), 2.0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->achieved_alpha, 2.0);
  EXPECT_EQ(hit->result->weighted_cost, 2.0);
  EXPECT_EQ(cache.GetStats().entries, 1u);
}

TEST(PlanCacheTest, ConcurrentMixedTraffic) {
  PlanCache::Options options;
  options.capacity = 64;
  options.shards = 8;
  PlanCache cache(options);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "key" + std::to_string((t * 7 + i) % 100);
        if (i % 3 == 0) {
          cache.Insert(Sig(key), Result(i));
        } else {
          auto hit = cache.Lookup(Sig(key));
          if (hit != nullptr) {
            // Touch the value: TSan would flag unsynchronized access.
            volatile double cost = hit->result->weighted_cost;
            (void)cost;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Per thread, every i with i % 3 != 0 is a lookup.
  const int lookups_per_thread = kOpsPerThread - (kOpsPerThread + 2) / 3;
  const PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * lookups_per_thread);
  EXPECT_LE(stats.entries, 64u + 8u);  // Capacity rounding headroom.
}

}  // namespace
}  // namespace moqo
