// Copyright (c) 2026 moqo authors. MIT license.
//
// FrontierSession tests: the anytime refinement API (PR 5). TSan-covered
// (see .github/workflows/ci.yml) — the concurrent-Select and coalescing
// tests double as race detectors.

#include "service/frontier_session.h"

#include <atomic>
#include <cmath>
#include <future>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/rta.h"
#include "cost/cost_vector.h"
#include "harness/workload.h"
#include "service/optimization_service.h"
#include "testing/test_helpers.h"

namespace moqo {
namespace {

using testing::MakeStarQuery;
using testing::MakeTinyCatalog;
using testing::SmallOperatorSpace;
using testing::SmallOptions;

constexpr double kInf = std::numeric_limits<double>::infinity();

ServiceOptions SmallServiceOptions(int workers) {
  ServiceOptions options;
  options.num_workers = workers;
  options.operators = SmallOperatorSpace();
  return options;
}

ObjectiveSet FirstObjectives(int num_objectives) {
  std::vector<Objective> objectives(kAllObjectives.begin(),
                                    kAllObjectives.begin() + num_objectives);
  return ObjectiveSet(objectives);
}

/// An RTA-routed spec (explicit override so the ladder is multi-rung even
/// on EXA-sized queries).
ProblemSpec RtaStarSpec(const Catalog* catalog, int num_dims,
                        int num_objectives, double alpha) {
  ProblemSpec spec;
  spec.query = std::make_shared<Query>(MakeStarQuery(catalog, num_dims));
  spec.objectives = FirstObjectives(num_objectives);
  spec.algorithm = AlgorithmKind::kRta;
  spec.alpha = alpha;
  return spec;
}

/// Total optimizer invocations recorded by the service (all algorithms);
/// every completed ladder rung counts once.
uint64_t OptimizerRuns(const OptimizationService& service) {
  uint64_t runs = 0;
  for (const HistogramSnapshot& lat : service.Stats().latency_by_algorithm) {
    runs += lat.count;
  }
  return runs;
}

TEST(FrontierSessionTest, FirstFrontierAvailableWhenOpenReturns) {
  Catalog catalog = MakeTinyCatalog();
  OptimizationService service(SmallServiceOptions(2));

  SessionOptions options;
  options.alpha_start = 3.0;
  options.max_steps = 3;
  auto session =
      service.OpenFrontier(RtaStarSpec(&catalog, 3, 3, 1.25), options);
  ASSERT_NE(session, nullptr);

  // quick_first guarantees a selectable frontier before OpenFrontier
  // returned — the anytime property's step 0.
  ASSERT_NE(session->BestFrontier(), nullptr);
  Preference preference;
  preference.weights = WeightVector::Uniform(3);
  const SessionSelection selection = session->Select(preference);
  ASSERT_NE(selection.selection.plan, nullptr);
  EXPECT_GE(selection.step, 0);

  EXPECT_TRUE(session->AwaitTarget());
  EXPECT_TRUE(session->Done());
  EXPECT_DOUBLE_EQ(session->BestAlpha(), 1.25);
  session->Cancel();
}

TEST(FrontierSessionTest, LadderRefinesMonotonicallyToTarget) {
  Catalog catalog = MakeTinyCatalog();
  OptimizationService service(SmallServiceOptions(2));

  SessionOptions options;
  options.alpha_start = 2.5;
  options.max_steps = 3;
  const ProblemSpec spec = RtaStarSpec(&catalog, 3, 3, 1.2);
  auto session = service.OpenFrontier(spec, options);
  ASSERT_TRUE(session->AwaitTarget());

  const std::vector<RefinedFrontier> history = session->History();
  ASSERT_GE(history.size(), 2u);  // Quick prelude + at least the target.
  for (size_t i = 0; i < history.size(); ++i) {
    ASSERT_NE(history[i].plan_set, nullptr) << i;
    EXPECT_GT(history[i].plan_set->size(), 0) << i;
    if (i > 0) {
      // Every published frontier strictly tightens the guarantee.
      EXPECT_LT(history[i].alpha, history[i - 1].alpha) << i;
      // Monotone improvement: each previous frontier plan is covered by
      // the new frontier within the new step's guarantee (the new set is
      // an alpha_i-approximate Pareto set over ALL plans, in particular
      // over the previous frontier). FP slack for the cost arithmetic.
      const double factor = std::isinf(history[i].alpha)
                                ? kInf
                                : history[i].alpha * (1 + 1e-9);
      for (const CostVector& prev : history[i - 1].plan_set->costs()) {
        bool covered = false;
        for (const CostVector& now : history[i].plan_set->costs()) {
          if (ApproxDominates(now, prev, factor)) {
            covered = true;
            break;
          }
        }
        EXPECT_TRUE(covered) << "step " << i << " uncovered prev plan";
      }
    }
  }
  EXPECT_DOUBLE_EQ(history.back().alpha, 1.2);
  EXPECT_TRUE(session->TargetReached());

  // The final frontier is byte-identical to a standalone RTA run at the
  // target precision.
  MOQOProblem problem;
  problem.query = spec.query.get();
  problem.objectives = spec.objectives;
  problem.weights = WeightVector::Uniform(3);
  RTAOptimizer reference(SmallOptions(1.2));
  const OptimizerResult direct = reference.Optimize(problem);
  ASSERT_NE(direct.plan_set, nullptr);
  EXPECT_EQ(session->BestFrontier()->costs(), direct.plan_set->costs());

  // One optimizer invocation per ladder rung, and the stats saw them.
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.refinement_steps, OptimizerRuns(service));
  EXPECT_GE(stats.refinement_steps, 2u);
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_EQ(stats.sessions_active, 0u);
}

TEST(FrontierSessionTest, ConcurrentSelectDuringRefinementIsSafe) {
  Catalog catalog = MakeTinyCatalog();
  OptimizationService service(SmallServiceOptions(2));

  SessionOptions options;
  options.alpha_start = 4.0;
  options.max_steps = 4;
  auto session =
      service.OpenFrontier(RtaStarSpec(&catalog, 3, 4, 1.1), options);

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  constexpr int kThreads = 4;
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      Xoshiro256 rng(1000 + t);
      double last_alpha = kInf;
      while (!stop.load(std::memory_order_relaxed)) {
        Preference preference;
        WeightVector weights(4);
        for (int i = 0; i < 4; ++i) weights[i] = rng.NextDouble() + 1e-3;
        preference.weights = weights;
        const SessionSelection selection = session->Select(preference);
        if (selection.selection.plan == nullptr ||
            selection.plan_set == nullptr) {
          ++bad;  // quick_first: never empty.
          continue;
        }
        // The served guarantee never regresses for a single observer.
        if (selection.alpha > last_alpha * (1 + 1e-12)) ++bad;
        last_alpha = selection.alpha;
        // The selection is the weighted minimum over its own frontier.
        double best = kInf;
        for (const CostVector& cost : selection.plan_set->costs()) {
          best = std::min(best, weights.WeightedCost(cost));
        }
        if (selection.selection.weighted_cost > best * (1 + 1e-12)) ++bad;
      }
    });
  }
  EXPECT_TRUE(session->AwaitTarget());
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(FrontierSessionTest, OnRefinedReplaysAndStreamsInOrder) {
  Catalog catalog = MakeTinyCatalog();
  OptimizationService service(SmallServiceOptions(1));

  SessionOptions options;
  options.alpha_start = 2.0;
  options.max_steps = 2;
  auto session =
      service.OpenFrontier(RtaStarSpec(&catalog, 2, 3, 1.3), options);
  session->AwaitTarget();

  // Late subscriber: the full history replays synchronously, in order.
  std::vector<double> seen;
  std::mutex seen_mu;
  const int id = session->OnRefined([&](const RefinedFrontier& frontier) {
    std::lock_guard<std::mutex> lock(seen_mu);
    seen.push_back(frontier.alpha);
  });
  const std::vector<RefinedFrontier> history = session->History();
  ASSERT_EQ(seen.size(), history.size());
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], history[i].alpha) << i;
    if (i > 0) EXPECT_LT(seen[i], seen[i - 1]) << i;
  }
  session->RemoveCallback(id);
}

TEST(FrontierSessionTest, CancellationMidStepStopsRefinement) {
  // A deliberately expensive ladder (12-table chain near-exact): Cancel()
  // right after open must abort the rung through the DP's cancellation
  // token instead of letting it run to completion.
  SharedSubgraphOptions workload;
  workload.num_queries = 1;
  workload.tables_per_query = 12;
  workload.num_objectives = 3;
  Catalog catalog = MakeSharedSubgraphCatalog(workload);
  std::vector<ProblemSpec> specs =
      BuildSharedSubgraphSpecs(&catalog, workload);
  ASSERT_EQ(specs.size(), 1u);
  specs[0].algorithm = AlgorithmKind::kRta;
  specs[0].alpha = 1.0005;  // Near-exact: seconds of DP if not cancelled.
  specs[0].parallelism = 1;

  ServiceOptions service_options = SmallServiceOptions(1);
  OptimizationService service(service_options);

  SessionOptions options;
  options.alpha_start = -1;  // Single heavy rung.
  options.max_steps = 1;
  options.quick_first = true;
  StopWatch watch;
  auto session = service.OpenFrontier(specs[0], options);
  ASSERT_NE(session->BestFrontier(), nullptr);  // Quick frontier exists.
  session->Cancel();
  EXPECT_TRUE(session->Cancelled());

  // The session completes (promptly — the rung aborts at its next
  // deadline poll) without reaching the target.
  const bool reached = session->AwaitFor(30000);
  EXPECT_TRUE(session->Done());
  EXPECT_FALSE(reached);
  EXPECT_FALSE(session->TargetReached());
  // Whatever was published is still selectable.
  Preference preference;
  const SessionSelection selection = session->Select(preference);
  EXPECT_NE(selection.selection.plan, nullptr);
  EXPECT_EQ(service.Stats().sessions_active, 0u);
}

TEST(FrontierSessionTest, IdenticalSpecsCoalesceOntoOneLadder) {
  Catalog catalog = MakeTinyCatalog();
  OptimizationService service(SmallServiceOptions(1));

  // Pin the single worker behind a heavy one-shot so the first session's
  // ladder stays queued (but registered — registration is synchronous at
  // open) until both opens happened: the coalesce is then deterministic
  // instead of racing the ladder's completion.
  ServiceRequest heavy;
  heavy.spec.query = std::make_shared<Query>(MakeStarQuery(&catalog, 3));
  heavy.spec.objectives = FirstObjectives(9);
  heavy.spec.algorithm = AlgorithmKind::kExa;
  heavy.preference.deadline_ms = 10000;
  std::future<ServiceResponse> heavy_future = service.Submit(heavy);

  SessionOptions options;
  options.alpha_start = 2.5;
  options.max_steps = 2;
  const ProblemSpec spec = RtaStarSpec(&catalog, 3, 3, 1.2);
  auto first = service.OpenFrontier(spec, options);
  auto second = service.OpenFrontier(spec, options);
  EXPECT_NE(heavy_future.get().status, ResponseStatus::kRejected);

  // Identical (spec, ladder) opens share one session object and ladder.
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(service.Stats().sessions_coalesced, 1u);

  EXPECT_TRUE(first->AwaitTarget());
  // One optimizer run per rung (plus the heavy blocker), not per opener.
  EXPECT_EQ(service.Stats().refinement_steps, 2u);
  EXPECT_EQ(OptimizerRuns(service), service.Stats().refinement_steps + 1);

  // Each opener owns one cancel ticket: the first Cancel must not abort
  // the other opener's refinement signal.
  first->Cancel();
  EXPECT_FALSE(second->Cancelled());
  second->Cancel();
  EXPECT_TRUE(second->Cancelled());
}

TEST(FrontierSessionTest, SessionBornDoneFromTighterCachedEntry) {
  Catalog catalog = MakeTinyCatalog();
  OptimizationService service(SmallServiceOptions(1));

  // Populate the cache at a TIGHT precision via the one-shot path...
  ServiceRequest request;
  request.spec = RtaStarSpec(&catalog, 3, 3, 1.1);
  request.preference.weights = WeightVector::Uniform(3);
  const ServiceResponse cold = service.SubmitAndWait(request);
  ASSERT_EQ(cold.status, ResponseStatus::kCompleted);
  ASSERT_EQ(OptimizerRuns(service), 1u);

  // ...then a LOOSER session is born done from that entry: relaxed alpha
  // identity at the plan-cache level, no ladder, no optimizer run.
  SessionOptions options;
  options.alpha_start = 3.0;
  options.max_steps = 3;
  auto session =
      service.OpenFrontier(RtaStarSpec(&catalog, 3, 3, 1.8), options);
  EXPECT_TRUE(session->Done());
  EXPECT_TRUE(session->TargetReached());
  ASSERT_EQ(session->StepsPublished(), 1);
  const RefinedFrontier served = session->History().front();
  EXPECT_TRUE(served.from_cache);
  EXPECT_DOUBLE_EQ(served.alpha, 1.1);  // The achieved, tighter guarantee.
  EXPECT_EQ(session->BestFrontier().get(), cold.plan_set().get());
  EXPECT_EQ(OptimizerRuns(service), 1u);
}

TEST(FrontierSessionTest, TighterCacheEntryServesLooserOneShotRequest) {
  Catalog catalog = MakeTinyCatalog();
  OptimizationService service(SmallServiceOptions(1));

  ServiceRequest tight;
  tight.spec = RtaStarSpec(&catalog, 3, 3, 1.2);
  tight.preference.weights = WeightVector::Uniform(3);
  ASSERT_EQ(service.SubmitAndWait(tight).status, ResponseStatus::kCompleted);

  // Same spec at a looser precision: served from the tighter entry.
  ServiceRequest loose = tight;
  loose.spec.alpha = 2.5;
  const ServiceResponse response = service.SubmitAndWait(loose);
  ASSERT_EQ(response.status, ResponseStatus::kCompleted);
  EXPECT_TRUE(response.cache_hit());
  EXPECT_DOUBLE_EQ(response.alpha, 1.2);  // Reports the achieved alpha.
  EXPECT_EQ(OptimizerRuns(service), 1u);

  // The reverse direction must re-optimize: looser entries never serve
  // tighter requests.
  ServiceRequest tighter = tight;
  tighter.spec.alpha = 1.05;
  const ServiceResponse recomputed = service.SubmitAndWait(tighter);
  ASSERT_EQ(recomputed.status, ResponseStatus::kCompleted);
  EXPECT_EQ(recomputed.cache, CacheOutcome::kMiss);
  EXPECT_EQ(OptimizerRuns(service), 2u);
}

TEST(FrontierSessionTest, SubmitAndWaitIsByteIdenticalToOneStepSession) {
  Catalog catalog = MakeTinyCatalog();

  ServiceRequest request;
  request.spec = RtaStarSpec(&catalog, 3, 3, 1.4);
  request.preference.weights = WeightVector::Uniform(3);
  request.preference.weights[0] = 2.0;

  // The shim on one service...
  OptimizationService shim_service(SmallServiceOptions(1));
  const ServiceResponse response = shim_service.SubmitAndWait(request);
  ASSERT_EQ(response.status, ResponseStatus::kCompleted);
  EXPECT_EQ(response.cache, CacheOutcome::kMiss);
  ASSERT_NE(response.plan_set(), nullptr);

  // ...a hand-driven one-step session on a fresh one.
  OptimizationService session_service(SmallServiceOptions(1));
  SessionOptions one_step;
  one_step.alpha_start = -1;
  one_step.max_steps = 1;
  one_step.quick_first = false;
  auto session =
      session_service.OpenFrontier(request.spec, one_step);
  ASSERT_TRUE(session->AwaitTarget());
  ASSERT_EQ(session->ladder().size(), 1u);
  EXPECT_DOUBLE_EQ(session->ladder().front(), 1.4);

  // Byte-identical frontiers, identical selections.
  ASSERT_NE(session->BestFrontier(), nullptr);
  EXPECT_EQ(session->BestFrontier()->costs(), response.plan_set()->costs());
  const SessionSelection selection = session->Select(request.preference);
  ASSERT_NE(selection.selection.plan, nullptr);
  EXPECT_TRUE(PlansEqual(selection.selection.plan, response.result->plan));
  EXPECT_EQ(selection.selection.cost, response.result->cost);
  EXPECT_DOUBLE_EQ(selection.selection.weighted_cost,
                   response.result->weighted_cost);
}

TEST(FrontierSessionTest, ConcurrentSubmitAndWaitDuplicatesCoalesce) {
  Catalog catalog = MakeTinyCatalog();
  OptimizationService service(SmallServiceOptions(2));

  ServiceRequest request;
  request.spec = RtaStarSpec(&catalog, 3, 4, 1.15);
  constexpr int kClients = 6;
  std::vector<std::thread> clients;
  std::vector<ServiceResponse> responses(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      ServiceRequest mine = request;
      mine.preference.weights = WeightVector::Uniform(4);
      mine.preference.weights[0] = 1.0 + t;
      responses[t] = service.SubmitAndWait(mine);
    });
  }
  for (std::thread& client : clients) client.join();

  int misses = 0, coalesced = 0, hits = 0;
  for (int t = 0; t < kClients; ++t) {
    ASSERT_EQ(responses[t].status, ResponseStatus::kCompleted) << t;
    ASSERT_NE(responses[t].result, nullptr) << t;
    ASSERT_NE(responses[t].result->plan, nullptr) << t;
    if (responses[t].cache == CacheOutcome::kMiss) ++misses;
    if (responses[t].cache == CacheOutcome::kCoalescedHit) ++coalesced;
    if (responses[t].cache_hit()) ++hits;
    // Every response selects from the same shared frontier.
    EXPECT_EQ(responses[t].plan_set()->costs(),
              responses[0].plan_set()->costs());
  }
  EXPECT_EQ(misses, 1);
  EXPECT_EQ(misses + coalesced + hits, kClients);
  EXPECT_EQ(OptimizerRuns(service), 1u);
  EXPECT_EQ(service.InFlight(), 0u);
}

TEST(FrontierSessionTest, LadderStepsReuseSubplanMemoAcrossSessions) {
  // Overlapping sessions: same-shape sliding windows share most of their
  // join subgraph, so each ladder rung of the second session probes the
  // table-set frontiers the first session's same-alpha rung published.
  SharedSubgraphOptions workload;
  workload.num_queries = 2;
  workload.tables_per_query = 6;
  workload.num_objectives = 3;
  Catalog catalog = MakeSharedSubgraphCatalog(workload);
  std::vector<ProblemSpec> specs =
      BuildSharedSubgraphSpecs(&catalog, workload);
  for (ProblemSpec& spec : specs) {
    spec.algorithm = AlgorithmKind::kRta;
    spec.alpha = 1.3;
    spec.parallelism = 1;
  }

  ServiceOptions options = SmallServiceOptions(1);
  options.subplan_memo.min_tables = 2;
  options.subplan_memo.admission_epsilon = 0;  // Deterministic admission.
  OptimizationService service(options);

  SessionOptions session_options;
  session_options.alpha_start = 2.2;
  session_options.max_steps = 2;
  session_options.quick_first = false;

  auto first = service.OpenFrontier(specs[0], session_options);
  ASSERT_TRUE(first->AwaitTarget());
  const uint64_t hits_after_first = service.Stats().memo_hits;

  auto second = service.OpenFrontier(specs[1], session_options);
  ASSERT_TRUE(second->AwaitTarget());
  const ServiceStatsSnapshot stats = service.Stats();
  // Distinct specs — the whole-query cache cannot help...
  EXPECT_EQ(stats.cache_hits, 0u);
  // ...but every rung of the second ladder reuses the first's published
  // sub-frontiers at the matching precision.
  EXPECT_GT(stats.memo_hits, hits_after_first);
  EXPECT_EQ(stats.refinement_steps, 4u);  // 2 sessions x 2 rungs.
}

TEST(FrontierSessionTest, InvalidSpecsYieldBornDoneSessions) {
  Catalog catalog = MakeTinyCatalog();
  OptimizationService service(SmallServiceOptions(1));

  // Null query.
  auto null_session = service.OpenFrontier(ProblemSpec{});
  ASSERT_NE(null_session, nullptr);
  EXPECT_TRUE(null_session->Done());
  EXPECT_FALSE(null_session->TargetReached());
  EXPECT_EQ(null_session->BestFrontier(), nullptr);
  EXPECT_EQ(null_session->Select(Preference{}).selection.plan, nullptr);

  // Preference-dependent algorithms cannot be preference-free sessions.
  ProblemSpec ira = RtaStarSpec(&catalog, 2, 3, 1.5);
  ira.algorithm = AlgorithmKind::kIra;
  auto ira_session = service.OpenFrontier(ira);
  EXPECT_TRUE(ira_session->Done());
  EXPECT_FALSE(ira_session->TargetReached());
  EXPECT_EQ(ira_session->BestFrontier(), nullptr);
}

TEST(FrontierSessionTest, OverloadShedsRefinementNotFirstFrontiers) {
  // max_inflight=4, fraction=0.5 → shed watermark max(2, 2) = 2: with four
  // concurrent ladders on one worker, refinement rungs find the service
  // over the watermark and shed, while every session still gets its
  // first frontier (no opens rejected).
  Catalog catalog = MakeTinyCatalog();
  ServiceOptions service_options = SmallServiceOptions(1);
  service_options.max_inflight = 4;
  service_options.refinement_shed_fraction = 0.5;
  service_options.enable_cache = false;
  service_options.enable_coalescing = false;
  OptimizationService service(service_options);

  SessionOptions options;
  options.alpha_start = 4.0;
  options.max_steps = 6;
  std::vector<std::shared_ptr<FrontierSession>> sessions;
  for (int i = 0; i < 4; ++i) {
    sessions.push_back(
        service.OpenFrontier(RtaStarSpec(&catalog, 3, 3, 1.05), options));
    ASSERT_NE(sessions.back(), nullptr);
    // First frontier is never shed: it was published before open returned.
    EXPECT_NE(sessions.back()->BestFrontier(), nullptr);
  }
  int sheds = 0;
  for (const auto& session : sessions) {
    session->AwaitTarget();
    EXPECT_TRUE(session->Done());
    EXPECT_FALSE(session->Rejected());
    EXPECT_NE(session->BestFrontier(), nullptr);
    if (session->Shed()) {
      ++sheds;
      // Shed ends the ladder early, keeping published guarantees only.
      EXPECT_FALSE(session->TargetReached());
    }
  }
  // The exact count depends on how far the worker raced ahead of the
  // opens, but overload must shed someone — and never everyone (the last
  // ladder standing refines below the watermark).
  EXPECT_GE(sheds, 1);
  EXPECT_LE(sheds, 3);
  EXPECT_EQ(service.Stats().refinement_sheds, static_cast<uint64_t>(sheds));
  for (auto& session : sessions) session->Cancel();

  // Control: identical load with priority_admission off sheds nothing and
  // every ladder runs to target.
  ServiceOptions fifo_options = service_options;
  fifo_options.priority_admission = false;
  OptimizationService fifo(fifo_options);
  std::vector<std::shared_ptr<FrontierSession>> fifo_sessions;
  for (int i = 0; i < 4; ++i) {
    fifo_sessions.push_back(
        fifo.OpenFrontier(RtaStarSpec(&catalog, 3, 3, 1.05), options));
  }
  for (auto& session : fifo_sessions) {
    EXPECT_TRUE(session->AwaitTarget());
    EXPECT_FALSE(session->Shed());
    session->Cancel();
  }
  EXPECT_EQ(fifo.Stats().refinement_sheds, 0u);
}

TEST(FrontierSessionTest, CoalescedOpenersObserveMonotoneAlphasOnRungSplit) {
  // Rung-split regression: with each ladder rung a separate pool task, an
  // opener that coalesces onto a running session (or re-probes into a
  // fresh one as the ladder finishes — the insert-before-registry-erase
  // window) must still observe strictly decreasing alphas through
  // OnRefined's replay + live stream.
  Catalog catalog = MakeTinyCatalog();
  ServiceOptions service_options = SmallServiceOptions(2);
  service_options.enable_cache = false;  // Every open runs a real ladder.
  OptimizationService service(service_options);

  SessionOptions options;
  options.alpha_start = 8.0;
  options.max_steps = 8;
  const auto spec = [&] { return RtaStarSpec(&catalog, 3, 3, 1.01); };

  // Opened back-to-back mid-ladder, the second opener joins the first's
  // session rather than starting a duplicate ladder — but on a fast run
  // the first ladder can finish before the second open lands (the
  // re-probe window the joiner loop below also exercises), so retry
  // until a mid-ladder coalesce is actually caught.
  std::shared_ptr<FrontierSession> first;
  std::shared_ptr<FrontierSession> second;
  bool coalesced = false;
  for (int attempt = 0; attempt < 20 && !coalesced; ++attempt) {
    first = service.OpenFrontier(spec(), options);
    ASSERT_NE(first, nullptr);
    second = service.OpenFrontier(spec(), options);
    ASSERT_NE(second, nullptr);
    coalesced = first.get() == second.get();
    if (!coalesced) {
      first->Cancel();
      second->Cancel();
    }
  }
  EXPECT_TRUE(coalesced) << "no back-to-back open coalesced in 20 attempts";

  for (int round = 0; round < 8; ++round) {
    auto joiner = service.OpenFrontier(spec(), options);
    ASSERT_NE(joiner, nullptr);
    std::mutex alphas_mu;
    std::vector<double> alphas;
    const int id = joiner->OnRefined([&](const RefinedFrontier& refined) {
      std::lock_guard<std::mutex> lock(alphas_mu);
      alphas.push_back(refined.alpha);
    });
    joiner->AwaitTarget();
    joiner->RemoveCallback(id);
    std::lock_guard<std::mutex> lock(alphas_mu);
    ASSERT_GE(alphas.size(), 1u);
    for (size_t i = 1; i < alphas.size(); ++i) {
      EXPECT_LT(alphas[i], alphas[i - 1])
          << "round " << round << " step " << i;
    }
    joiner->Cancel();
  }
  first->Cancel();
  second->Cancel();
}

TEST(FrontierSessionTest, CancelExpiryRacingRungCompletionIsExactlyOnce) {
  // Cancellation rides the optimizer's Deadline::WithCancel: setting the
  // flag makes the in-flight rung's deadline report expiry at its next
  // poll, so a cancel can land before a rung, mid-rung, on the rung's
  // finish line, or after the ladder is already done. Sweep that window
  // with a deterministic delay schedule and assert the terminal-state
  // contract at every landing spot: published alphas stay strictly
  // monotone, Done() becomes true, and OnDone fires exactly once —
  // neither the expiring rung nor the finish path may double-terminate.
  Catalog catalog = MakeTinyCatalog();
  ServiceOptions service_options = SmallServiceOptions(2);
  service_options.enable_cache = false;  // Every round runs a real ladder.
  OptimizationService service(service_options);

  SessionOptions options;
  options.alpha_start = 8.0;
  options.max_steps = 8;
  options.step_deadline_ms = 50;

  for (int round = 0; round < 50; ++round) {
    auto session =
        service.OpenFrontier(RtaStarSpec(&catalog, 3, 3, 1.01), options);
    ASSERT_NE(session, nullptr);
    // Shared, not a stack ref: Done() becomes observable slightly before
    // callback delivery finishes, so a late-delivered callback must not
    // scribble a dead frame of a past round.
    auto done_fires = std::make_shared<std::atomic<int>>(0);
    session->OnDone([done_fires] { done_fires->fetch_add(1); });

    // 0..~2.9 ms in coprime steps: dense coverage of the rung lifecycle
    // without two rounds probing the same interleaving.
    std::this_thread::sleep_for(std::chrono::microseconds((round * 59) % 2953));
    session->Cancel();

    // AwaitFor's return is target_reached — legitimately false when the
    // cancel won the race. Terminality is the invariant: Done(), always.
    session->AwaitFor(10000);
    ASSERT_TRUE(session->Done()) << "round " << round;
    // Delivery is asynchronous relative to Done(); wait for the one fire.
    for (int i = 0; i < 10000 && done_fires->load() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(done_fires->load(), 1) << "round " << round;

    // Alphas published up to the terminal state are strictly monotone
    // (History() is the publish log; a late rung sneaking one in after
    // the cancel's finish would break the ordering or resurrect done_).
    const std::vector<RefinedFrontier> history = session->History();
    for (size_t i = 1; i < history.size(); ++i) {
      EXPECT_LT(history[i].alpha, history[i - 1].alpha)
          << "round " << round << " step " << i;
    }

    // A second cancel after the terminal state is a no-op, not a second
    // termination.
    session->Cancel();
    EXPECT_EQ(done_fires->load(), 1) << "round " << round;
  }
  // No admission slot leaks across 50 cancelled ladders.
  for (int i = 0; i < 10000 && service.InFlight() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(service.InFlight(), 0u);
}

}  // namespace
}  // namespace moqo
