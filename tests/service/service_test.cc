// Copyright (c) 2026 moqo authors. MIT license.

#include "service/optimization_service.h"

#include <algorithm>
#include <future>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/exa.h"
#include "harness/service_experiment.h"
#include "query/tpch_queries.h"
#include "service/policy.h"
#include "testing/test_helpers.h"

namespace moqo {
namespace {

using testing::MakeStarQuery;
using testing::MakeTinyCatalog;
using testing::SmallOperatorSpace;
using testing::SmallOptions;

ServiceOptions SmallServiceOptions(int workers) {
  ServiceOptions options;
  options.num_workers = workers;
  options.operators = SmallOperatorSpace();
  return options;
}

ObjectiveSet FirstObjectives(int num_objectives) {
  std::vector<Objective> objectives(kAllObjectives.begin(),
                                    kAllObjectives.begin() + num_objectives);
  return ObjectiveSet(objectives);
}

ServiceRequest StarRequest(const Catalog* catalog, int num_dims,
                           int num_objectives) {
  ServiceRequest request;
  request.spec.query =
      std::make_shared<Query>(MakeStarQuery(catalog, num_dims));
  request.spec.objectives = FirstObjectives(num_objectives);
  request.preference.weights = WeightVector::Uniform(num_objectives);
  return request;
}

/// Total optimizer invocations recorded by the service (all algorithms).
uint64_t OptimizerRuns(const OptimizationService& service) {
  uint64_t runs = 0;
  for (const HistogramSnapshot& lat : service.Stats().latency_by_algorithm) {
    runs += lat.count;
  }
  return runs;
}

/// Brute-force SelectBest over a PlanSet's frontier.
double MinWeightedCost(const PlanSet& set, const WeightVector& weights) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < set.size(); ++i) {
    best = std::min(best, weights.WeightedCost(set.cost(i)));
  }
  return best;
}

TEST(PolicyTest, RoutesBySpecShape) {
  Catalog catalog = MakeTinyCatalog();
  Query small = MakeStarQuery(&catalog, 2);

  // Single-objective: Selinger.
  EXPECT_EQ(
      ChooseAlgorithm(small, ObjectiveSet::Only(Objective::kTotalTime), -1)
          .algorithm,
      AlgorithmKind::kSelinger);

  // Small weighted instance: EXA.
  EXPECT_EQ(ChooseAlgorithm(small,
                            ObjectiveSet({Objective::kTotalTime,
                                          Objective::kIOLoad,
                                          Objective::kEnergy}),
                            -1)
                .algorithm,
            AlgorithmKind::kExa);

  // Many objectives: RTA with the default precision.
  PolicyDecision relaxed = ChooseAlgorithm(small, ObjectiveSet::All(), -1);
  EXPECT_EQ(relaxed.algorithm, AlgorithmKind::kRta);

  // Tight deadline: still RTA but coarser.
  PolicyDecision tight = ChooseAlgorithm(small, ObjectiveSet::All(), 50);
  EXPECT_EQ(tight.algorithm, AlgorithmKind::kRta);
  EXPECT_GT(tight.alpha, relaxed.alpha);

  // Routing is a pure function of the spec: preferences (weights/bounds)
  // are not even parameters, which keeps the cache key weight-free. The
  // IRA is reachable via ProblemSpec::algorithm only.

  // Intra-query parallelism gates on table count: small specs stay serial,
  // big ones fan out up to the configured cap.
  PolicyOptions fan_out;
  fan_out.parallel_min_tables = 4;
  fan_out.max_parallelism = 4;
  EXPECT_EQ(ChooseAlgorithm(small, ObjectiveSet::All(), -1, fan_out)
                .parallelism,
            1);  // star(2) = 3 tables, below the threshold.
  Query big = MakeStarQuery(&catalog, 3);  // 4 tables: fans out.
  EXPECT_EQ(ChooseAlgorithm(big, ObjectiveSet::All(), -1, fan_out)
                .parallelism,
            4);
  fan_out.max_parallelism = 1;  // Cap 1 = parallelism off everywhere.
  EXPECT_EQ(ChooseAlgorithm(big, ObjectiveSet::All(), -1, fan_out)
                .parallelism,
            1);
}

TEST(ServiceTest, ExactHitIsBitIdenticalToFreshOptimization) {
  Catalog catalog = MakeTinyCatalog();
  OptimizationService service(SmallServiceOptions(2));
  ServiceRequest request = StarRequest(&catalog, 3, 3);

  const ServiceResponse cold = service.SubmitAndWait(request);
  ASSERT_EQ(cold.status, ResponseStatus::kCompleted);
  EXPECT_EQ(cold.cache, CacheOutcome::kMiss);
  EXPECT_FALSE(cold.cache_hit());
  ASSERT_NE(cold.result, nullptr);
  ASSERT_NE(cold.result->plan, nullptr);
  ASSERT_NE(cold.plan_set(), nullptr);

  const ServiceResponse warm = service.SubmitAndWait(request);
  ASSERT_EQ(warm.status, ResponseStatus::kCompleted);
  EXPECT_EQ(warm.cache, CacheOutcome::kExactHit);
  EXPECT_TRUE(warm.cache_hit());
  ASSERT_NE(warm.result, nullptr);

  // An exact hit is the same complete result object: plan shape, cost
  // vector, and the shared PlanSet are identical.
  EXPECT_EQ(warm.result.get(), cold.result.get());
  EXPECT_TRUE(PlansEqual(cold.result->plan, warm.result->plan));
  EXPECT_EQ(cold.result->cost, warm.result->cost);
  EXPECT_EQ(cold.result->weighted_cost, warm.result->weighted_cost);
  EXPECT_EQ(warm.plan_set().get(), cold.plan_set().get());

  // And identical to a fresh single-shot optimization with the same
  // resolved algorithm and options.
  MOQOProblem problem;
  problem.query = request.spec.query.get();
  problem.objectives = request.spec.objectives;
  problem.weights = request.preference.weights;
  OptimizerOptions opts = SmallOptions(warm.alpha);
  std::unique_ptr<OptimizerBase> fresh = MakeOptimizer(warm.algorithm, opts);
  const OptimizerResult reference = fresh->Optimize(problem);
  ASSERT_NE(reference.plan, nullptr);
  EXPECT_TRUE(PlansEqual(reference.plan, warm.result->plan));
  EXPECT_EQ(reference.cost, warm.result->cost);
  EXPECT_EQ(reference.frontier(), warm.result->frontier());

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.requests_total, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.exact_hits, 1u);
  EXPECT_EQ(stats.frontier_hits, 0u);
}

// The PR-2 acceptance criterion: a weight-only change on a previously
// optimized query is served from the cache — a frontier hit resolved by
// SelectPlan, with NO optimizer invocation.
TEST(ServiceTest, WeightOnlyChangeIsFrontierHitWithoutOptimizerRun) {
  Catalog catalog = MakeTinyCatalog();
  OptimizationService service(SmallServiceOptions(2));
  ServiceRequest request = StarRequest(&catalog, 3, 3);

  const ServiceResponse cold = service.SubmitAndWait(request);
  ASSERT_EQ(cold.status, ResponseStatus::kCompleted);
  ASSERT_EQ(OptimizerRuns(service), 1u);

  Xoshiro256 rng(17);
  constexpr int kSweeps = 8;
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    for (int i = 0; i < 3; ++i) {
      request.preference.weights[i] = rng.NextDouble() + 1e-3;
    }
    const ServiceResponse response = service.SubmitAndWait(request);
    ASSERT_EQ(response.status, ResponseStatus::kCompleted);
    EXPECT_EQ(response.cache, CacheOutcome::kFrontierHit) << sweep;
    EXPECT_TRUE(response.cache_hit());
    ASSERT_NE(response.result, nullptr);
    ASSERT_NE(response.result->plan, nullptr);

    // The response aliases the SAME PlanSet the cold run produced...
    EXPECT_EQ(response.plan_set().get(), cold.plan_set().get());
    // ...and its plan is the weighted-cost minimizer over that frontier.
    EXPECT_DOUBLE_EQ(
        response.result->weighted_cost,
        MinWeightedCost(*response.plan_set(), request.preference.weights));
    EXPECT_EQ(response.result->weighted_cost,
              request.preference.weights.WeightedCost(response.result->cost));
  }

  // The optimizer never ran again: every weight change was pure selection.
  EXPECT_EQ(OptimizerRuns(service), 1u);
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.frontier_hits, static_cast<uint64_t>(kSweeps));
  EXPECT_EQ(stats.exact_hits, 0u);
}

// Property test: for randomized weight sweeps on TPC-H queries, SelectPlan
// over the cached PlanSet returns a plan whose weighted cost is within
// alpha of a cold-run (exact) optimum.
TEST(ServiceTest, WeightSweepSelectionWithinAlphaOfColdOptimum) {
  Catalog catalog = Catalog::TpcH(0.01);
  const double alpha = 1.5;
  for (int query_number : {3, 10}) {
    OptimizationService service(SmallServiceOptions(2));
    ServiceRequest request;
    request.spec.query =
        std::make_shared<Query>(MakeTpcHQuery(&catalog, query_number));
    request.spec.objectives = FirstObjectives(3);
    request.spec.algorithm = AlgorithmKind::kRta;
    request.spec.alpha = alpha;

    Xoshiro256 rng(100 + query_number);
    for (int trial = 0; trial < 8; ++trial) {
      WeightVector weights(3);
      for (int i = 0; i < 3; ++i) weights[i] = rng.NextDouble() + 1e-3;
      request.preference.weights = weights;
      const ServiceResponse response = service.SubmitAndWait(request);
      ASSERT_EQ(response.status, ResponseStatus::kCompleted);
      if (trial > 0) {
        EXPECT_EQ(response.cache, CacheOutcome::kFrontierHit)
            << "q" << query_number << " trial " << trial;
      }
      ASSERT_NE(response.result, nullptr);
      ASSERT_NE(response.result->plan, nullptr);

      // Cold-run optimum for this preference.
      MOQOProblem problem;
      problem.query = request.spec.query.get();
      problem.objectives = request.spec.objectives;
      problem.weights = weights;
      const OptimizerResult exact =
          ExactMOQO(SmallOptions()).Optimize(problem);
      ASSERT_NE(exact.plan, nullptr);
      EXPECT_LE(response.result->weighted_cost,
                exact.weighted_cost * alpha + 1e-9)
          << "q" << query_number << " trial " << trial;
    }
    EXPECT_EQ(OptimizerRuns(service), 1u) << "q" << query_number;
  }
}

TEST(ServiceTest, BoundedPreferenceHonoredAtSelectionTime) {
  Catalog catalog = MakeTinyCatalog();
  OptimizationService service(SmallServiceOptions(2));
  ServiceRequest request = StarRequest(&catalog, 3, 3);

  const ServiceResponse cold = service.SubmitAndWait(request);
  ASSERT_EQ(cold.status, ResponseStatus::kCompleted);
  std::shared_ptr<const PlanSet> frontier = cold.plan_set();
  ASSERT_NE(frontier, nullptr);
  ASSERT_GE(frontier->size(), 1);

  // Feasible bounds anchored at a frontier plan's cost: the selection must
  // respect them — resolved from the cached frontier, no optimizer run.
  const CostVector anchor = frontier->cost(frontier->size() / 2);
  request.preference.bounds = BoundVector::Unbounded(3);
  for (int i = 0; i < 3; ++i) request.preference.bounds[i] = anchor[i];
  const ServiceResponse bounded = service.SubmitAndWait(request);
  ASSERT_EQ(bounded.status, ResponseStatus::kCompleted);
  EXPECT_EQ(bounded.cache, CacheOutcome::kFrontierHit);
  ASSERT_NE(bounded.result, nullptr);
  EXPECT_TRUE(bounded.result->respects_bounds);
  EXPECT_TRUE(request.preference.bounds.Respects(bounded.result->cost));

  // Unsatisfiable bounds: falls back to the global weighted optimum and
  // says so.
  for (int i = 0; i < 3; ++i) request.preference.bounds[i] = 1e-15;
  const ServiceResponse infeasible = service.SubmitAndWait(request);
  ASSERT_EQ(infeasible.status, ResponseStatus::kCompleted);
  ASSERT_NE(infeasible.result, nullptr);
  EXPECT_FALSE(infeasible.result->respects_bounds);
  EXPECT_DOUBLE_EQ(
      infeasible.result->weighted_cost,
      MinWeightedCost(*frontier, request.preference.weights));

  EXPECT_EQ(OptimizerRuns(service), 1u);
}

TEST(ServiceTest, ColdBoundedRtaMissHonorsBoundsLikeFrontierHit) {
  // Regression: a cold miss must apply the same bounded selection as a
  // frontier hit — cache temperature never changes the answer.
  Catalog catalog = MakeTinyCatalog();

  // Derive feasible bounds from a library-level RTA run's frontier.
  Query query = MakeStarQuery(&catalog, 3);
  MOQOProblem problem;
  problem.query = &query;
  problem.objectives = FirstObjectives(3);
  problem.weights = WeightVector::Uniform(3);
  const OptimizerResult reference =
      MakeOptimizer(AlgorithmKind::kRta, SmallOptions(1.5))->Optimize(problem);
  ASSERT_GE(reference.frontier_size(), 1);
  const CostVector anchor =
      reference.plan_set->cost(reference.frontier_size() / 2);

  OptimizationService service(SmallServiceOptions(2));
  ServiceRequest request = StarRequest(&catalog, 3, 3);
  request.spec.algorithm = AlgorithmKind::kRta;
  request.spec.alpha = 1.5;
  request.preference.bounds = BoundVector::Unbounded(3);
  for (int i = 0; i < 3; ++i) request.preference.bounds[i] = anchor[i];

  const ServiceResponse cold = service.SubmitAndWait(request);
  ASSERT_EQ(cold.status, ResponseStatus::kCompleted);
  EXPECT_EQ(cold.cache, CacheOutcome::kMiss);
  ASSERT_NE(cold.result, nullptr);
  EXPECT_TRUE(cold.result->respects_bounds);
  EXPECT_TRUE(request.preference.bounds.Respects(cold.result->cost));

  // The same preference resubmitted is an exact hit with the same plan.
  const ServiceResponse warm = service.SubmitAndWait(request);
  EXPECT_EQ(warm.cache, CacheOutcome::kExactHit);
  EXPECT_TRUE(PlansEqual(warm.result->plan, cold.result->plan));
}

TEST(ServiceTest, ExplicitIraOverrideIsPreferenceKeyed) {
  // The IRA's output is tailored to its weights/bounds, so its cache
  // entries are shared only between identical preferences: same request
  // twice = exact hit, any weight change = full re-optimization.
  Catalog catalog = MakeTinyCatalog();
  OptimizationService service(SmallServiceOptions(2));
  ServiceRequest request = StarRequest(&catalog, 2, 3);
  request.spec.algorithm = AlgorithmKind::kIra;
  request.spec.alpha = 1.5;
  request.preference.bounds = BoundVector::Unbounded(3);
  request.preference.bounds[0] = 1e12;  // Loose finite bound.

  const ServiceResponse first = service.SubmitAndWait(request);
  ASSERT_EQ(first.status, ResponseStatus::kCompleted);
  EXPECT_EQ(first.cache, CacheOutcome::kMiss);
  EXPECT_EQ(first.algorithm, AlgorithmKind::kIra);

  const ServiceResponse repeat = service.SubmitAndWait(request);
  EXPECT_EQ(repeat.cache, CacheOutcome::kExactHit);

  request.preference.weights[0] = 3.5;
  const ServiceResponse reweighted = service.SubmitAndWait(request);
  EXPECT_EQ(reweighted.cache, CacheOutcome::kMiss);
  EXPECT_EQ(OptimizerRuns(service), 2u);
}

// Coalescing (TSan-covered): duplicate cache misses on one signature
// optimize once — later arrivals wait on the first miss and are served
// from its frontier by selection.
TEST(ServiceTest, CachedFrontierCompactedToEpsilonCover) {
  Catalog catalog = MakeTinyCatalog();
  ServiceOptions options = SmallServiceOptions(2);
  options.max_cached_frontier = 4;
  options.cache_compaction_epsilon = 0.1;
  OptimizationService service(options);

  ServiceRequest request = StarRequest(&catalog, 3, 3);
  const ServiceResponse cold = service.SubmitAndWait(request);
  ASSERT_EQ(cold.status, ResponseStatus::kCompleted);
  ASSERT_NE(cold.result, nullptr);
  // The cold response carries the full frontier...
  const int full_size = cold.result->frontier_size();
  ASSERT_GT(full_size, 4) << "fixture frontier too small to compact";

  // ...while the cached copy was compacted: an exact hit serves a PlanSet
  // within the cap whose plan is still a valid selection from it.
  const ServiceResponse warm = service.SubmitAndWait(request);
  ASSERT_EQ(warm.cache, CacheOutcome::kExactHit);
  ASSERT_NE(warm.result, nullptr);
  EXPECT_LE(warm.result->frontier_size(), 4);
  EXPECT_GE(warm.result->frontier_size(), 1);
  ASSERT_NE(warm.result->plan, nullptr);
  EXPECT_EQ(warm.result->weighted_cost,
            MinWeightedCost(*warm.result->plan_set,
                            request.preference.weights));

  // Every full-frontier plan is epsilon-covered by some cached plan at the
  // epsilon CompactPlanSet settled on — spot-check the weighted optimum:
  // compaction cannot cost more than the final coverage factor, which the
  // stats registry sees as a small weighted-cost regression only.
  EXPECT_GE(warm.result->weighted_cost,
            MinWeightedCost(*cold.result->plan_set,
                            request.preference.weights));

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_LE(stats.MeanCachedFrontier(), 4.0);
  EXPECT_GT(stats.cache_bytes, 0u);
}

TEST(ServiceTest, CoalescedDuplicateMissesOptimizeOnce) {
  Catalog catalog = MakeTinyCatalog();
  OptimizationService service(SmallServiceOptions(1));

  // Occupy the single worker so the duplicate spec stays queued.
  ServiceRequest heavy = StarRequest(&catalog, 3, 9);
  heavy.spec.algorithm = AlgorithmKind::kExa;
  heavy.preference.deadline_ms = 2000;
  std::future<ServiceResponse> heavy_future = service.Submit(heavy);

  // Identical spec, rotating weights: the first becomes the queued
  // primary, the rest coalesce behind it.
  constexpr int kDuplicates = 6;
  ServiceRequest dup = StarRequest(&catalog, 2, 3);
  std::vector<std::future<ServiceResponse>> futures;
  std::vector<WeightVector> weights;
  for (int i = 0; i < kDuplicates; ++i) {
    ServiceRequest request = dup;
    request.preference.weights = WeightVector::Uniform(3);
    request.preference.weights[0] = 1.0 + i;
    weights.push_back(request.preference.weights);
    futures.push_back(service.Submit(request));
  }

  int misses = 0, coalesced = 0;
  for (int i = 0; i < kDuplicates; ++i) {
    const ServiceResponse response = futures[i].get();
    ASSERT_EQ(response.status, ResponseStatus::kCompleted) << i;
    ASSERT_NE(response.result, nullptr);
    ASSERT_NE(response.result->plan, nullptr);
    if (response.cache == CacheOutcome::kMiss) ++misses;
    if (response.cache == CacheOutcome::kCoalescedHit) {
      ++coalesced;
      // Waiters get their own preference's selection from the shared set.
      EXPECT_DOUBLE_EQ(response.result->weighted_cost,
                       MinWeightedCost(*response.plan_set(), weights[i]));
    }
  }
  EXPECT_EQ(misses, 1);
  EXPECT_EQ(coalesced, kDuplicates - 1);

  const ServiceResponse heavy_response = heavy_future.get();
  EXPECT_NE(heavy_response.status, ResponseStatus::kRejected);

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.coalesced_hits, static_cast<uint64_t>(kDuplicates - 1));
  // Two optimizer runs total: the heavy blocker and ONE run for all six
  // duplicate-spec requests.
  EXPECT_EQ(OptimizerRuns(service), 2u);
  EXPECT_EQ(service.InFlight(), 0u);
}

TEST(ServiceTest, DegradedPrimaryPromotesOneWaiterNotAll) {
  // A primary that quick-modes cannot serve its waiters (its plan depends
  // on its own weights and carries no guarantee): exactly ONE waiter is
  // promoted to a fresh full run and the rest are served from that run —
  // no thundering herd of identical DPs.
  Catalog catalog = MakeTinyCatalog();
  ServiceOptions options = SmallServiceOptions(1);
  // The subplan memo would let the heavy runs below share their DP work
  // (their alpha overrides distinguish *cache* keys, but EXA's internal
  // alpha — what the memo keys on — is always 1), collapsing the runway
  // this test depends on. Coalescing, not the memo, is under test here.
  options.enable_subplan_memo = false;
  OptimizationService service(options);

  // Pin the single worker behind a queue of heavy runs (distinct
  // objective subsets = distinct signatures, so they neither coalesce nor
  // hit the cache — alpha no longer distinguishes keys under the relaxed
  // identity): one ~5 ms EXA is not enough runway under a loaded parallel
  // test host — the submit loop below must finish parking every waiter
  // before the worker reaches the doomed primary.
  constexpr int kHeavy = 10;
  std::vector<std::future<ServiceResponse>> heavy_futures;
  for (int i = 0; i < kHeavy; ++i) {
    ServiceRequest heavy = StarRequest(&catalog, 3, 9);
    // Drop one rotating objective (and for i >= 8, two) from the full
    // set: every subset is distinct, every run stays heavy.
    std::vector<Objective> picked;
    for (int k = 0; k < kNumObjectives; ++k) {
      if (k == 1 + (i % 8)) continue;
      if (i >= 8 && k == 1 + ((i + 1) % 8)) continue;
      picked.push_back(kAllObjectives[k]);
    }
    heavy.spec.objectives = ObjectiveSet(picked);
    heavy.preference.weights =
        WeightVector::Uniform(heavy.spec.objectives.size());
    heavy.spec.algorithm = AlgorithmKind::kExa;
    heavy.preference.deadline_ms = 10000;
    heavy_futures.push_back(service.Submit(heavy));
  }

  // Primary with an already-hopeless deadline: by the time the single
  // worker reaches it, it degrades to quick mode and cannot be cached.
  ServiceRequest dup = StarRequest(&catalog, 2, 3);
  ServiceRequest doomed = dup;
  doomed.preference.deadline_ms = 1;
  std::future<ServiceResponse> doomed_future = service.Submit(doomed);

  constexpr int kWaiters = 4;
  std::vector<std::future<ServiceResponse>> futures;
  for (int i = 0; i < kWaiters; ++i) {
    ServiceRequest request = dup;  // Deadline-free: parks as waiter.
    request.preference.weights = WeightVector::Uniform(3);
    request.preference.weights[0] = 2.0 + i;
    futures.push_back(service.Submit(request));
  }

  EXPECT_EQ(doomed_future.get().status, ResponseStatus::kCompletedQuick);
  int promoted_misses = 0, coalesced = 0;
  for (std::future<ServiceResponse>& future : futures) {
    const ServiceResponse response = future.get();
    ASSERT_EQ(response.status, ResponseStatus::kCompleted);
    ASSERT_NE(response.result, nullptr);
    EXPECT_NE(response.result->plan, nullptr);
    if (response.cache == CacheOutcome::kMiss) ++promoted_misses;
    if (response.cache == CacheOutcome::kCoalescedHit) ++coalesced;
  }
  EXPECT_EQ(promoted_misses, 1);
  EXPECT_EQ(coalesced, kWaiters - 1);
  for (std::future<ServiceResponse>& future : heavy_futures) future.get();
  // kHeavy heavies + doomed quick run + ONE promoted full run.
  EXPECT_EQ(OptimizerRuns(service), kHeavy + 2u);
  EXPECT_EQ(service.InFlight(), 0u);
}

TEST(ServiceTest, DeadlineBoundedDuplicatesDoNotCoalesce) {
  // A waiter cannot degrade to quick mode while parked, so duplicates
  // carrying a deadline must keep their own optimizer run.
  Catalog catalog = MakeTinyCatalog();
  OptimizationService service(SmallServiceOptions(1));

  ServiceRequest heavy = StarRequest(&catalog, 3, 9);
  heavy.spec.algorithm = AlgorithmKind::kExa;
  heavy.preference.deadline_ms = 2000;
  std::future<ServiceResponse> heavy_future = service.Submit(heavy);

  ServiceRequest dup = StarRequest(&catalog, 2, 3);
  std::future<ServiceResponse> primary_future = service.Submit(dup);
  ServiceRequest bounded = dup;
  bounded.preference.deadline_ms = 1;  // Must honor its own budget.
  std::future<ServiceResponse> bounded_future = service.Submit(bounded);

  const ServiceResponse bounded_response = bounded_future.get();
  EXPECT_EQ(bounded_response.cache, CacheOutcome::kMiss);
  ASSERT_NE(bounded_response.result, nullptr);
  ASSERT_NE(bounded_response.result->plan, nullptr);  // Quick or full.

  EXPECT_EQ(primary_future.get().status, ResponseStatus::kCompleted);
  EXPECT_NE(heavy_future.get().status, ResponseStatus::kRejected);
  EXPECT_EQ(service.Stats().coalesced_hits, 0u);
  EXPECT_EQ(OptimizerRuns(service), 3u);  // heavy + primary + bounded dup.
}

TEST(ServiceTest, ExpiredDeadlineReturnsQuickModePlanNeverNull) {
  Catalog catalog = MakeTinyCatalog();
  ServiceOptions options = SmallServiceOptions(1);
  options.enable_cache = false;
  OptimizationService service(options);

  ServiceRequest request = StarRequest(&catalog, 3, 3);
  request.preference.deadline_ms = 0;  // Already expired at submit.
  const ServiceResponse response = service.SubmitAndWait(request);

  EXPECT_EQ(response.status, ResponseStatus::kCompletedQuick);
  ASSERT_NE(response.result, nullptr);
  ASSERT_NE(response.result->plan, nullptr);  // Quick-mode plan, not null.
  EXPECT_TRUE(response.result->metrics.timed_out);
  EXPECT_EQ(response.result->plan->tables.Cardinality(), 4);
  EXPECT_GE(service.Stats().deadline_timeouts, 1u);
}

TEST(ServiceTest, TimedOutResultsAreNotCached) {
  Catalog catalog = MakeTinyCatalog();
  OptimizationService service(SmallServiceOptions(1));

  ServiceRequest request = StarRequest(&catalog, 3, 3);
  // Pin algorithm and alpha: otherwise the tight- and no-deadline requests
  // resolve to different policy decisions and thus different cache keys,
  // and the !timed_out cacheability guard would never be exercised.
  request.spec.algorithm = AlgorithmKind::kExa;
  request.spec.alpha = 1.0;
  request.preference.deadline_ms = 0;
  const ServiceResponse quick = service.SubmitAndWait(request);
  EXPECT_EQ(quick.status, ResponseStatus::kCompletedQuick);

  // The same problem with no deadline must re-optimize, not serve the
  // degraded quick-mode plan from the cache.
  request.preference.deadline_ms = -1;
  const ServiceResponse full = service.SubmitAndWait(request);
  EXPECT_EQ(full.status, ResponseStatus::kCompleted);
  EXPECT_FALSE(full.cache_hit());
  EXPECT_FALSE(full.result->metrics.timed_out);
}

TEST(ServiceTest, AdmissionControlShedsLoadBeyondMaxInflight) {
  Catalog catalog = MakeTinyCatalog();
  ServiceOptions options = SmallServiceOptions(1);
  options.enable_cache = false;
  options.max_inflight = 1;
  OptimizationService service(options);

  // Occupy the single worker long enough to observe rejections: EXA on the
  // full star with all nine objectives, bounded by a deadline so the test
  // finishes fast either way.
  ServiceRequest heavy = StarRequest(&catalog, 3, 9);
  heavy.spec.algorithm = AlgorithmKind::kExa;
  heavy.preference.deadline_ms = 2000;
  std::future<ServiceResponse> heavy_future = service.Submit(heavy);

  // Admission counts queued + running, so these reject synchronously while
  // the heavy request is in flight.
  int rejected = 0;
  for (int i = 0; i < 4; ++i) {
    ServiceRequest light = StarRequest(&catalog, 2, 2);
    const ServiceResponse response = service.SubmitAndWait(light);
    if (response.status == ResponseStatus::kRejected) {
      ++rejected;
      EXPECT_EQ(response.result, nullptr);
    }
  }
  EXPECT_GE(rejected, 1);
  EXPECT_GE(service.Stats().admissions_rejected,
            static_cast<uint64_t>(rejected));

  const ServiceResponse heavy_response = heavy_future.get();
  EXPECT_NE(heavy_response.status, ResponseStatus::kRejected);
  ASSERT_NE(heavy_response.result, nullptr);
  EXPECT_NE(heavy_response.result->plan, nullptr);
}

TEST(ServiceTest, ConcurrentMixedWorkloadCorrectPerRequestResults) {
  Catalog catalog = MakeTinyCatalog();
  ServiceOptions options = SmallServiceOptions(4);
  OptimizationService service(options);

  // Four distinct problems, each with a known fresh reference result.
  struct Case {
    ServiceRequest request;
    OptimizerResult reference;
  };
  std::vector<Case> cases;
  for (int dims = 1; dims <= 2; ++dims) {
    for (int objectives = 2; objectives <= 3; ++objectives) {
      Case c;
      c.request = StarRequest(&catalog, dims, objectives);
      MOQOProblem problem;
      problem.query = c.request.spec.query.get();
      problem.objectives = c.request.spec.objectives;
      problem.weights = c.request.preference.weights;
      const PolicyDecision decision =
          ChooseAlgorithm(*c.request.spec.query, c.request.spec.objectives,
                          -1, options.policy);
      std::unique_ptr<OptimizerBase> optimizer =
          MakeOptimizer(decision.algorithm, SmallOptions(decision.alpha));
      c.reference = optimizer->Optimize(problem);
      cases.push_back(std::move(c));
    }
  }

  // 8 client threads x 16 requests, round-robin over the cases.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 16;
  std::vector<std::thread> clients;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const Case& c = cases[(t + i) % cases.size()];
        const ServiceResponse response =
            service.SubmitAndWait(c.request);
        if (response.status != ResponseStatus::kCompleted ||
            response.result == nullptr ||
            response.result->plan == nullptr ||
            !(response.result->cost == c.reference.cost) ||
            !PlansEqual(response.result->plan, c.reference.plan) ||
            response.result->frontier() != c.reference.frontier()) {
          ++mismatches[t];
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "client thread " << t;
  }
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.requests_total,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.completed, stats.requests_total);
  // At least the first encounter of each distinct problem misses; racing
  // first encounters coalesce behind it instead of optimizing twice.
  EXPECT_GE(stats.cache_misses, cases.size());
  // Every request does exactly one counted cache lookup (coalesced
  // waiters record their miss, then wait).
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.requests_total);
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_hits, stats.exact_hits + stats.frontier_hits);
}

TEST(ServiceTest, SustainsManyConcurrentInflightRequests) {
  Catalog catalog = MakeTinyCatalog();
  ServiceOptions options = SmallServiceOptions(4);
  options.enable_cache = false;  // Force every request through the pool.
  options.max_inflight = 256;
  OptimizationService service(options);

  constexpr int kRequests = 80;  // > 64 concurrently in flight.
  std::vector<std::future<ServiceResponse>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    ServiceRequest request = StarRequest(&catalog, 1 + i % 3, 2 + i % 2);
    request.preference.deadline_ms = 30000;
    futures.push_back(service.Submit(request));
  }

  int resolved = 0;
  for (std::future<ServiceResponse>& future : futures) {
    const ServiceResponse response = future.get();
    EXPECT_NE(response.status, ResponseStatus::kRejected);
    ASSERT_NE(response.result, nullptr);
    EXPECT_NE(response.result->plan, nullptr);
    ++resolved;
  }
  EXPECT_EQ(resolved, kRequests);
  EXPECT_EQ(service.InFlight(), 0u);
}

TEST(ServiceTest, NullQueryIsRejectedNotCrashed) {
  OptimizationService service(SmallServiceOptions(1));
  ServiceRequest request;  // spec.query == nullptr
  const ServiceResponse response = service.SubmitAndWait(request);
  EXPECT_EQ(response.status, ResponseStatus::kRejected);
  EXPECT_EQ(response.result, nullptr);
  EXPECT_EQ(response.plan_set(), nullptr);
  EXPECT_EQ(service.Stats().internal_errors, 1u);
}

TEST(ServiceTest, WorkloadDriverEndToEnd) {
  Catalog catalog = Catalog::TpcH(0.01);
  OptimizerOptions gen_options = SmallOptions();
  WorkloadGenerator generator(&catalog, gen_options);

  ServiceWorkloadOptions workload_options;
  workload_options.query_numbers = {3, 10};
  workload_options.cases_per_query = 2;
  workload_options.num_objectives = 3;
  std::vector<ServiceRequest> requests =
      BuildServiceWorkload(&catalog, &generator, workload_options);
  ASSERT_EQ(requests.size(), 4u);

  ServiceOptions options = SmallServiceOptions(2);
  OptimizationService service(options);
  const ServiceRunStats cold = DriveService(&service, requests);
  EXPECT_EQ(cold.completed + cold.quick, cold.total);
  EXPECT_EQ(cold.rejected, 0);
  EXPECT_EQ(cold.null_plans, 0);

  // Re-driving the same workload resolves every request from the cache
  // (exact hits where the cached preference matches, frontier hits where a
  // same-spec sibling's preference populated the entry).
  const ServiceRunStats warm = DriveService(&service, requests);
  EXPECT_EQ(warm.cache_hits, warm.total);
}

// --------------------------------------------------------------------------
// Cross-query subplan memo through the service.

/// Chain catalog for overlap tests: distinct cardinalities, indexed key.
Catalog MakeServiceChainCatalog(int tables) {
  Catalog catalog;
  for (int i = 0; i < tables; ++i) {
    const long rows = 300 * (1 + (i * 3) % 5);
    Table table("c" + std::to_string(i), rows, 40);
    ColumnStats key;
    key.name = "k";
    key.ndv = 40;
    key.min_value = 0;
    key.max_value = 39;
    key.histogram = Histogram::Uniform(0, 39, 8, rows);
    table.AddColumn(key);
    table.AddIndex("k");
    catalog.AddTable(std::move(table));
  }
  return catalog;
}

ServiceRequest ChainRequest(const Catalog* catalog, int lo, int hi) {
  auto query = std::make_shared<Query>(
      Query(catalog, "chain" + std::to_string(lo) + std::to_string(hi)));
  std::vector<int> locals;
  for (int i = lo; i <= hi; ++i) {
    locals.push_back(query->AddTable("c" + std::to_string(i)));
  }
  for (size_t i = 0; i + 1 < locals.size(); ++i) {
    query->AddJoin(locals[i], "k", locals[i + 1], "k");
  }
  ServiceRequest request;
  request.spec.query = std::move(query);
  request.spec.objectives = FirstObjectives(3);
  request.preference.weights = WeightVector::Uniform(3);
  return request;
}

TEST(ServiceTest, SubplanMemoSharesAcrossOverlappingQueries) {
  Catalog catalog = MakeServiceChainCatalog(6);
  // Same-length chains (the memo key carries the resolved precision, and
  // RTA's internal alpha depends on query size): both route identically.
  const ServiceRequest a = ChainRequest(&catalog, 0, 3);
  const ServiceRequest b = ChainRequest(&catalog, 1, 4);

  ServiceOptions memo_on = SmallServiceOptions(1);
  memo_on.subplan_memo.min_tables = 2;
  memo_on.subplan_memo.admission_epsilon = 0;  // Deterministic admission.
  OptimizationService service(memo_on);
  ASSERT_NE(service.subplan_memo(), nullptr);

  const ServiceResponse response_a = service.SubmitAndWait(a);
  ASSERT_EQ(response_a.status, ResponseStatus::kCompleted);
  EXPECT_EQ(service.Stats().memo_hits, 0u);
  EXPECT_GT(service.Stats().memo_insertions, 0u);

  const ServiceResponse response_b = service.SubmitAndWait(b);
  ASSERT_EQ(response_b.status, ResponseStatus::kCompleted);
  // Distinct specs: the whole-query cache cannot help, the memo does.
  EXPECT_EQ(response_b.cache, CacheOutcome::kMiss);
  EXPECT_GT(service.Stats().memo_hits, 0u);
  EXPECT_GT(service.Stats().MemoHitRate(), 0.0);

  // The frontier served with memo sharing is byte-identical to a
  // memo-disabled service's.
  ServiceOptions memo_off = SmallServiceOptions(1);
  memo_off.enable_subplan_memo = false;
  OptimizationService reference(memo_off);
  EXPECT_EQ(reference.subplan_memo(), nullptr);
  const ServiceResponse reference_b = reference.SubmitAndWait(b);
  ASSERT_EQ(reference_b.status, ResponseStatus::kCompleted);
  ASSERT_NE(response_b.plan_set(), nullptr);
  ASSERT_NE(reference_b.plan_set(), nullptr);
  EXPECT_EQ(response_b.plan_set()->costs(), reference_b.plan_set()->costs());
  EXPECT_EQ(response_b.result->cost, reference_b.result->cost);
  EXPECT_EQ(reference.Stats().memo_hits, 0u);
}

TEST(ServiceTest, SubplanMemoInvalidatedOnCatalogEpochBump) {
  Catalog catalog = MakeServiceChainCatalog(5);
  ServiceOptions options = SmallServiceOptions(1);
  options.subplan_memo.min_tables = 2;
  options.subplan_memo.admission_epsilon = 0;
  OptimizationService service(options);

  ASSERT_EQ(service.SubmitAndWait(ChainRequest(&catalog, 0, 3)).status,
            ResponseStatus::kCompleted);
  ASSERT_GT(service.Stats().memo_entries, 0u);

  // Statistics refreshed in place: the next request must flush the memo
  // before probing, so stale sub-frontiers can never be served.
  catalog.BumpEpoch();
  ASSERT_EQ(service.SubmitAndWait(ChainRequest(&catalog, 1, 4)).status,
            ResponseStatus::kCompleted);
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.memo_invalidations, 1u);
  EXPECT_EQ(stats.memo_hits, 0u);
}

}  // namespace
}  // namespace moqo
