// Copyright (c) 2026 moqo authors. MIT license.

#include "service/optimization_service.h"

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/service_experiment.h"
#include "service/policy.h"
#include "testing/test_helpers.h"

namespace moqo {
namespace {

using testing::MakeStarQuery;
using testing::MakeTinyCatalog;
using testing::SmallOperatorSpace;
using testing::SmallOptions;

ServiceOptions SmallServiceOptions(int workers) {
  ServiceOptions options;
  options.num_workers = workers;
  options.operators = SmallOperatorSpace();
  return options;
}

ServiceRequest StarRequest(const Catalog* catalog, int num_dims,
                           int num_objectives) {
  ServiceRequest request;
  request.query =
      std::make_shared<Query>(MakeStarQuery(catalog, num_dims));
  std::vector<Objective> objectives(kAllObjectives.begin(),
                                    kAllObjectives.begin() + num_objectives);
  request.objectives = ObjectiveSet(objectives);
  request.weights = WeightVector::Uniform(num_objectives);
  return request;
}

TEST(PolicyTest, RoutesByProblemShape) {
  Catalog catalog = MakeTinyCatalog();
  Query small = MakeStarQuery(&catalog, 2);

  MOQOProblem problem;
  problem.query = &small;
  problem.objectives = ObjectiveSet::Only(Objective::kTotalTime);
  problem.weights = WeightVector::Uniform(1);
  EXPECT_EQ(ChooseAlgorithm(problem, -1).algorithm, AlgorithmKind::kSelinger);

  problem.objectives = ObjectiveSet(
      {Objective::kTotalTime, Objective::kIOLoad, Objective::kEnergy});
  problem.weights = WeightVector::Uniform(3);
  EXPECT_EQ(ChooseAlgorithm(problem, -1).algorithm, AlgorithmKind::kExa);

  // Bounds present: IRA.
  problem.bounds = BoundVector::Unbounded(3);
  problem.bounds[0] = 100.0;
  EXPECT_EQ(ChooseAlgorithm(problem, -1).algorithm, AlgorithmKind::kIra);
  problem.bounds = BoundVector();

  // Many objectives: RTA with the default precision.
  problem.objectives = ObjectiveSet::All();
  problem.weights = WeightVector::Uniform(kNumObjectives);
  PolicyDecision relaxed = ChooseAlgorithm(problem, -1);
  EXPECT_EQ(relaxed.algorithm, AlgorithmKind::kRta);

  // Tight deadline: still RTA but coarser.
  PolicyDecision tight = ChooseAlgorithm(problem, 50);
  EXPECT_EQ(tight.algorithm, AlgorithmKind::kRta);
  EXPECT_GT(tight.alpha, relaxed.alpha);
}

TEST(ServiceTest, CacheHitIsBitIdenticalToFreshOptimization) {
  Catalog catalog = MakeTinyCatalog();
  OptimizationService service(SmallServiceOptions(2));
  ServiceRequest request = StarRequest(&catalog, 3, 3);

  const ServiceResponse cold = service.SubmitAndWait(request);
  ASSERT_EQ(cold.status, ResponseStatus::kCompleted);
  EXPECT_FALSE(cold.cache_hit);
  ASSERT_NE(cold.result, nullptr);
  ASSERT_NE(cold.result->plan, nullptr);

  const ServiceResponse warm = service.SubmitAndWait(request);
  ASSERT_EQ(warm.status, ResponseStatus::kCompleted);
  EXPECT_TRUE(warm.cache_hit);
  ASSERT_NE(warm.result, nullptr);

  // The cached result is the same complete result object: plan shape,
  // cost vector, and frontier are bit-identical.
  EXPECT_TRUE(PlansEqual(cold.result->plan, warm.result->plan));
  EXPECT_EQ(cold.result->cost, warm.result->cost);
  EXPECT_EQ(cold.result->weighted_cost, warm.result->weighted_cost);
  EXPECT_EQ(cold.result->frontier, warm.result->frontier);

  // And identical to a fresh single-shot optimization with the same
  // resolved algorithm and options.
  MOQOProblem problem;
  problem.query = request.query.get();
  problem.objectives = request.objectives;
  problem.weights = request.weights;
  problem.bounds = request.bounds;
  OptimizerOptions opts = SmallOptions(warm.alpha);
  std::unique_ptr<OptimizerBase> fresh = MakeOptimizer(warm.algorithm, opts);
  const OptimizerResult reference = fresh->Optimize(problem);
  ASSERT_NE(reference.plan, nullptr);
  EXPECT_TRUE(PlansEqual(reference.plan, warm.result->plan));
  EXPECT_EQ(reference.cost, warm.result->cost);
  EXPECT_EQ(reference.frontier, warm.result->frontier);

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.requests_total, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
}

TEST(ServiceTest, ExpiredDeadlineReturnsQuickModePlanNeverNull) {
  Catalog catalog = MakeTinyCatalog();
  ServiceOptions options = SmallServiceOptions(1);
  options.enable_cache = false;
  OptimizationService service(options);

  ServiceRequest request = StarRequest(&catalog, 3, 3);
  request.deadline_ms = 0;  // Already expired at submit.
  const ServiceResponse response = service.SubmitAndWait(request);

  EXPECT_EQ(response.status, ResponseStatus::kCompletedQuick);
  ASSERT_NE(response.result, nullptr);
  ASSERT_NE(response.result->plan, nullptr);  // Quick-mode plan, not null.
  EXPECT_TRUE(response.result->metrics.timed_out);
  EXPECT_EQ(response.result->plan->tables.Cardinality(), 4);
  EXPECT_GE(service.Stats().deadline_timeouts, 1u);
}

TEST(ServiceTest, TimedOutResultsAreNotCached) {
  Catalog catalog = MakeTinyCatalog();
  OptimizationService service(SmallServiceOptions(1));

  ServiceRequest request = StarRequest(&catalog, 3, 3);
  // Pin algorithm and alpha: otherwise the tight- and no-deadline requests
  // resolve to different policy decisions and thus different cache keys,
  // and the !timed_out cacheability guard would never be exercised.
  request.algorithm = AlgorithmKind::kExa;
  request.alpha = 1.0;
  request.deadline_ms = 0;
  const ServiceResponse quick = service.SubmitAndWait(request);
  EXPECT_EQ(quick.status, ResponseStatus::kCompletedQuick);

  // The same problem with no deadline must re-optimize, not serve the
  // degraded quick-mode plan from the cache.
  request.deadline_ms = -1;
  const ServiceResponse full = service.SubmitAndWait(request);
  EXPECT_EQ(full.status, ResponseStatus::kCompleted);
  EXPECT_FALSE(full.cache_hit);
  EXPECT_FALSE(full.result->metrics.timed_out);
}

TEST(ServiceTest, AdmissionControlShedsLoadBeyondMaxInflight) {
  Catalog catalog = MakeTinyCatalog();
  ServiceOptions options = SmallServiceOptions(1);
  options.enable_cache = false;
  options.max_inflight = 1;
  OptimizationService service(options);

  // Occupy the single worker long enough to observe rejections: EXA on the
  // full star with all nine objectives, bounded by a deadline so the test
  // finishes fast either way.
  ServiceRequest heavy = StarRequest(&catalog, 3, 9);
  heavy.algorithm = AlgorithmKind::kExa;
  heavy.deadline_ms = 2000;
  std::future<ServiceResponse> heavy_future = service.Submit(heavy);

  // Admission counts queued + running, so these reject synchronously while
  // the heavy request is in flight.
  int rejected = 0;
  for (int i = 0; i < 4; ++i) {
    ServiceRequest light = StarRequest(&catalog, 2, 2);
    const ServiceResponse response = service.SubmitAndWait(light);
    if (response.status == ResponseStatus::kRejected) {
      ++rejected;
      EXPECT_EQ(response.result, nullptr);
    }
  }
  EXPECT_GE(rejected, 1);
  EXPECT_GE(service.Stats().admissions_rejected,
            static_cast<uint64_t>(rejected));

  const ServiceResponse heavy_response = heavy_future.get();
  EXPECT_NE(heavy_response.status, ResponseStatus::kRejected);
  ASSERT_NE(heavy_response.result, nullptr);
  EXPECT_NE(heavy_response.result->plan, nullptr);
}

TEST(ServiceTest, ConcurrentMixedWorkloadCorrectPerRequestResults) {
  Catalog catalog = MakeTinyCatalog();
  ServiceOptions options = SmallServiceOptions(4);
  OptimizationService service(options);

  // Four distinct problems, each with a known fresh reference result.
  struct Case {
    ServiceRequest request;
    OptimizerResult reference;
  };
  std::vector<Case> cases;
  for (int dims = 1; dims <= 2; ++dims) {
    for (int objectives = 2; objectives <= 3; ++objectives) {
      Case c;
      c.request = StarRequest(&catalog, dims, objectives);
      MOQOProblem problem;
      problem.query = c.request.query.get();
      problem.objectives = c.request.objectives;
      problem.weights = c.request.weights;
      const PolicyDecision decision =
          ChooseAlgorithm(problem, -1, options.policy);
      std::unique_ptr<OptimizerBase> optimizer =
          MakeOptimizer(decision.algorithm, SmallOptions(decision.alpha));
      c.reference = optimizer->Optimize(problem);
      cases.push_back(std::move(c));
    }
  }

  // 8 client threads x 16 requests, round-robin over the cases.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 16;
  std::vector<std::thread> clients;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const Case& c = cases[(t + i) % cases.size()];
        const ServiceResponse response =
            service.SubmitAndWait(c.request);
        if (response.status != ResponseStatus::kCompleted ||
            response.result == nullptr ||
            response.result->plan == nullptr ||
            !(response.result->cost == c.reference.cost) ||
            !PlansEqual(response.result->plan, c.reference.plan) ||
            response.result->frontier != c.reference.frontier) {
          ++mismatches[t];
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "client thread " << t;
  }
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.requests_total,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.completed, stats.requests_total);
  // At least the first encounter of each distinct problem misses; racing
  // first encounters may each miss before the first insert lands.
  EXPECT_GE(stats.cache_misses, cases.size());
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.requests_total);
  EXPECT_GT(stats.cache_hits, 0u);
}

TEST(ServiceTest, SustainsManyConcurrentInflightRequests) {
  Catalog catalog = MakeTinyCatalog();
  ServiceOptions options = SmallServiceOptions(4);
  options.enable_cache = false;  // Force every request through the pool.
  options.max_inflight = 256;
  OptimizationService service(options);

  constexpr int kRequests = 80;  // > 64 concurrently in flight.
  std::vector<std::future<ServiceResponse>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    ServiceRequest request = StarRequest(&catalog, 1 + i % 3, 2 + i % 2);
    request.deadline_ms = 30000;
    futures.push_back(service.Submit(request));
  }

  int resolved = 0;
  for (std::future<ServiceResponse>& future : futures) {
    const ServiceResponse response = future.get();
    EXPECT_NE(response.status, ResponseStatus::kRejected);
    ASSERT_NE(response.result, nullptr);
    EXPECT_NE(response.result->plan, nullptr);
    ++resolved;
  }
  EXPECT_EQ(resolved, kRequests);
  EXPECT_EQ(service.InFlight(), 0u);
}

TEST(ServiceTest, NullQueryIsRejectedNotCrashed) {
  OptimizationService service(SmallServiceOptions(1));
  ServiceRequest request;  // query == nullptr
  const ServiceResponse response = service.SubmitAndWait(request);
  EXPECT_EQ(response.status, ResponseStatus::kRejected);
  EXPECT_EQ(response.result, nullptr);
  EXPECT_EQ(service.Stats().internal_errors, 1u);
}

TEST(ServiceTest, WorkloadDriverEndToEnd) {
  Catalog catalog = Catalog::TpcH(0.01);
  OptimizerOptions gen_options = SmallOptions();
  WorkloadGenerator generator(&catalog, gen_options);

  ServiceWorkloadOptions workload_options;
  workload_options.query_numbers = {3, 10};
  workload_options.cases_per_query = 2;
  workload_options.num_objectives = 3;
  std::vector<ServiceRequest> requests =
      BuildServiceWorkload(&catalog, &generator, workload_options);
  ASSERT_EQ(requests.size(), 4u);

  ServiceOptions options = SmallServiceOptions(2);
  OptimizationService service(options);
  const ServiceRunStats cold = DriveService(&service, requests);
  EXPECT_EQ(cold.completed + cold.quick, cold.total);
  EXPECT_EQ(cold.rejected, 0);
  EXPECT_EQ(cold.null_plans, 0);

  const ServiceRunStats warm = DriveService(&service, requests);
  EXPECT_EQ(warm.cache_hits, warm.total);
}

}  // namespace
}  // namespace moqo
