// Copyright (c) 2026 moqo authors. MIT license.
//
// Chaos suite (PR 8): seeded fault schedules against the full serving
// stack. The invariants under injected faults are the PR's acceptance
// bar:
//
//   - every opened session reaches a terminal state (DONE or ERROR frame
//     over the wire; done_ in process) — no crash, no silent hang;
//   - published frontiers stay strictly monotone in alpha;
//   - the connection table drains to zero and no admission slot leaks;
//   - every armed site actually fired (hit counters via MetricsText).
//
// Fault schedules are pure functions of MOQO_CHAOS_SEED (default 1), so a
// CI failure replays locally from the seed it printed. CI runs this file
// under ASan with several fixed seeds.

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "net/blocking_client.h"
#include "net/net_server.h"
#include "rt/failpoint.h"
#include "service/optimization_service.h"
#include "testing/test_helpers.h"
#include "util/deadline.h"

namespace moqo {
namespace {

using net::BlockingNetClient;
using net::MsgType;
using net::NetOptions;
using net::NetServer;
using net::OpenFrontierMsg;
using testing::MakeStarQuery;
using testing::MakeTinyCatalog;
using testing::SmallOperatorSpace;

uint64_t ChaosSeed() {
  const char* env = std::getenv("MOQO_CHAOS_SEED");
  if (env == nullptr) return 1;
  const uint64_t seed = std::strtoull(env, nullptr, 10);
  return seed == 0 ? 1 : seed;
}

bool WaitFor(const std::function<bool()>& condition, int ms) {
  for (int i = 0; i < ms; ++i) {
    if (condition()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return condition();
}

/// A site and the one action that exercises its degradation path without
/// violating the site's contract (allocation sites throw OOM, error-path
/// sites take their error return, rung bodies throw).
struct SiteSpec {
  const char* site;
  const char* action;
};

constexpr SiteSpec kServiceSites[] = {
    {"arena.new_block", "oom"},     {"planset.snapshot", "oom"},
    {"planset.snapshot.remap", "oom"},
    {"cache.insert", "return_error"}, {"memo.insert", "return_error"},
    {"pool.dispatch", "return_error"}, {"session.rung", "throw"},
    // PR 9: the persistence layer rides the same hot path — the one-slot
    // chaos cache demotes on every insert (persist.tier.write) and probes
    // the disk tier on every RAM miss (persist.tier.read).
    {"persist.tier.write", "return_error"},
    {"persist.tier.read", "return_error"},
};

constexpr SiteSpec kNetSites[] = {
    {"net.accept", "return_error"},
    {"net.read", "return_error"},
    {"net.write", "return_error"},
    {"net.push.encode", "throw"},
};

/// Arms every listed site at `probability`, each with its own seed
/// derived from the run seed (sites must not fire in lockstep).
template <size_t N>
void ArmSites(const SiteSpec (&sites)[N], double probability,
              uint64_t seed) {
  for (size_t i = 0; i < N; ++i) {
    const std::string spec =
        "probability(" + std::to_string(probability) +
        ",seed=" + std::to_string(seed * 1000 + i) + "):" + sites[i].action;
    ASSERT_TRUE(rt::FailpointRegistry::Global().Arm(sites[i].site, spec))
        << sites[i].site << "=" << spec;
  }
}

template <size_t N>
bool AllSitesHit(const SiteSpec (&sites)[N]) {
  for (const SiteSpec& s : sites) {
    if (rt::FailpointRegistry::Global().Register(s.site).hits() == 0) {
      return false;
    }
  }
  return true;
}

/// Per-site assertion variant: a failure names the site that never fired.
template <size_t N>
void ExpectAllSitesHit(const SiteSpec (&sites)[N]) {
  for (const SiteSpec& s : sites) {
    EXPECT_GT(rt::FailpointRegistry::Global().Register(s.site).hits(), 0u)
        << "armed site never fired: " << s.site;
  }
}

/// Service + net front end over the tiny star catalog, mirroring the
/// net_server_test harness.
struct ChaosHarness {
  explicit ChaosHarness(ServiceOptions service_options,
                        NetOptions net_options = {}) {
    catalog = MakeTinyCatalog();
    for (int dims = 2; dims <= 3; ++dims) {
      queries["star" + std::to_string(dims)] =
          std::make_shared<Query>(MakeStarQuery(&catalog, dims));
    }
    service =
        std::make_unique<OptimizationService>(std::move(service_options));
    net_options.resolve_query =
        [this](const std::string& id) -> std::shared_ptr<const Query> {
      auto it = queries.find(id);
      return it == queries.end() ? nullptr : it->second;
    };
    server = std::make_unique<NetServer>(service.get(), net_options);
  }

  ~ChaosHarness() {
    rt::FailpointRegistry::Global().DisarmAll();  // Before teardown.
    server->Stop();
  }

  /// `alpha` is varied per open so the plan cache cannot absorb the run:
  /// a distinct target means a distinct signature, so every open walks
  /// the full ladder and visits every service-side failpoint.
  std::shared_ptr<FrontierSession> OpenStar(int dims, bool quick_first,
                                            double alpha) {
    ProblemSpec spec;
    spec.query = queries["star" + std::to_string(dims)];
    std::vector<Objective> objectives;
    for (int i = 0; i < dims; ++i) {
      objectives.push_back(static_cast<Objective>(i));
    }
    spec.objectives = ObjectiveSet(std::move(objectives));
    spec.algorithm = AlgorithmKind::kRta;
    spec.alpha = alpha;
    SessionOptions options;
    options.alpha_start = 3.0;
    options.max_steps = 3;
    options.quick_first = quick_first;
    return service->OpenFrontier(std::move(spec), options);
  }

  Catalog catalog;
  std::unordered_map<std::string, std::shared_ptr<const Query>> queries;
  std::unique_ptr<OptimizationService> service;
  std::unique_ptr<NetServer> server;
};

ServiceOptions ChaosServiceOptions(int workers) {
  ServiceOptions options;
  options.num_workers = workers;
  options.operators = SmallOperatorSpace();
  // One cache slot: the star2/star3 alternation keeps evicting it, so
  // almost every open walks a fresh ladder (visiting the service-side
  // failpoints) while cache.insert itself stays on the hot path. A
  // full-size cache would absorb the whole run after the first tight
  // frontier — Lookup serves any looser target from the same signature.
  options.cache.capacity = 1;
  options.cache.shards = 1;
  // A live disk tier behind the one-slot cache: every eviction demotes
  // (persist.write) and every miss probes disk (persist.read), putting
  // the persistence failpoints on the chaos hot path. Snapshots stay off
  // here — the restart-cycle test below owns cross-restart state.
  static std::atomic<int> persist_dir_counter{0};
  options.persist.directory = ::testing::TempDir() + "moqo_chaos_persist_" +
                              std::to_string(::getpid()) + "_" +
                              std::to_string(persist_dir_counter.fetch_add(1));
  options.persist.tier_capacity_bytes = size_t{4} << 20;
  options.persist.restore_on_start = false;
  options.persist.snapshot_on_shutdown = false;
  return options;
}

OpenFrontierMsg StarOpen(int dims, double alpha) {
  OpenFrontierMsg open;
  open.query_id = "star" + std::to_string(dims);
  for (int i = 0; i < dims; ++i) {
    open.objectives.push_back(static_cast<uint8_t>(i));
  }
  open.algorithm = static_cast<int8_t>(AlgorithmKind::kRta);
  open.alpha = alpha;
  open.alpha_start = 3.0;
  open.max_steps = 3;
  return open;
}

/// Tracks the strictly-decreasing-alpha invariant across one session's
/// publish stream. The first publish may carry alpha = +infinity (the
/// quick-mode prelude: valid plans, no guarantee yet) — only publishes
/// after it must strictly tighten.
struct AlphaMonotone {
  bool has_prior = false;
  double last = 0;
  /// Returns false on a violation.
  bool Observe(double alpha) {
    const bool ok = !has_prior || alpha < last;
    has_prior = true;
    last = alpha;
    return ok;
  }
};

// ---- In-process chaos: the service-layer degradation paths. ------------

TEST(ChaosTest, InProcessSessionsAlwaysReachTerminalState) {
  if (!rt::kFailpointsEnabled) {
    GTEST_SKIP() << "built with MOQO_FAILPOINTS=OFF";
  }
  const uint64_t seed = ChaosSeed();
  SCOPED_TRACE("MOQO_CHAOS_SEED=" + std::to_string(seed));
  ChaosHarness harness(ChaosServiceOptions(2));
  ArmSites(kServiceSites, 0.05, seed);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::atomic<int> not_terminal{0};
  std::atomic<int> monotonicity_violations{0};
  const auto run_batch = [&](int per_thread, int batch_tag) {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < per_thread; ++i) {
          const int id = batch_tag * 1000 + t * kPerThread + i;
          std::shared_ptr<FrontierSession> session = harness.OpenStar(
              2 + (t + i) % 2, i % 2 == 0, /*alpha=*/1.1 + 0.001 * id);
          if (session == nullptr) continue;  // Admission shed: terminal.
          auto monotone = std::make_shared<AlphaMonotone>();
          session->OnRefined([monotone, &monotonicity_violations](
                                 const RefinedFrontier& refined) {
            // Strictly monotone: every publish tightens the guarantee.
            if (!monotone->Observe(refined.alpha)) {
              monotonicity_violations.fetch_add(1);
            }
          });
          // Terminal within the timeout, whatever faults the ladder ate;
          // degraded and failed both count — hanging does not.
          session->AwaitFor(30000);
          if (!session->Done()) not_terminal.fetch_add(1);
          session->Cancel();
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  };

  run_batch(kPerThread, 0);
  // Some seeds schedule a sparse site's first fire past the initial
  // batch's visit count; top up until every armed site has fired.
  int extra_batches = 0;
  while (!AllSitesHit(kServiceSites) && extra_batches < 15) {
    run_batch(5, ++extra_batches);
  }

  EXPECT_EQ(not_terminal.load(), 0);
  EXPECT_EQ(monotonicity_violations.load(), 0);
  rt::FailpointRegistry::Global().DisarmAll();
  // No admission slot leaks: every ladder released its slot.
  EXPECT_TRUE(WaitFor([&] { return harness.service->InFlight() == 0; },
                      10000));
  ExpectAllSitesHit(kServiceSites);
}

TEST(ChaosTest, RungFailureFallsBackToQuickModeFrontier) {
  if (!rt::kFailpointsEnabled) {
    GTEST_SKIP() << "built with MOQO_FAILPOINTS=OFF";
  }
  ChaosHarness harness(ChaosServiceOptions(2));
  // Every rung dies. quick_first=false, so the ONLY possible frontier is
  // the degradation path's quick-mode fallback.
  ASSERT_TRUE(rt::FailpointRegistry::Global().Arm("session.rung",
                                                  "always:throw"));
  std::shared_ptr<FrontierSession> session =
      harness.OpenStar(3, /*quick_first=*/false, /*alpha=*/1.25);
  ASSERT_NE(session, nullptr);
  session->AwaitFor(30000);
  ASSERT_TRUE(session->Done());
  EXPECT_TRUE(session->Degraded());
  // "Never return null" (paper Section 5.1): the caller still holds a
  // usable frontier, just without a finite guarantee.
  EXPECT_NE(session->BestFrontier(), nullptr);
  session->Cancel();
  rt::FailpointRegistry::Global().DisarmAll();
}

TEST(ChaosTest, WatchdogForceFinishesWedgedRung) {
  if (!rt::kFailpointsEnabled) {
    GTEST_SKIP() << "built with MOQO_FAILPOINTS=OFF";
  }
  ServiceOptions options = ChaosServiceOptions(2);
  options.watchdog_poll_ms = 5;
  options.watchdog_factor = 2.0;
  ChaosHarness harness(std::move(options));
  // The first rung wedges for far longer than step_deadline * factor; the
  // watchdog must force the session to DONE{degraded} long before the
  // worker wakes, and the late rung must stand down quietly.
  ASSERT_TRUE(rt::FailpointRegistry::Global().Arm(
      "session.rung", "first_n(1):delay_ms(1500)"));

  ProblemSpec spec;
  spec.query = harness.queries["star3"];
  std::vector<Objective> objectives;
  for (int i = 0; i < 3; ++i) objectives.push_back(static_cast<Objective>(i));
  spec.objectives = ObjectiveSet(std::move(objectives));
  spec.algorithm = AlgorithmKind::kRta;
  spec.alpha = 1.25;
  SessionOptions session_options;
  session_options.alpha_start = 3.0;
  session_options.max_steps = 3;
  session_options.step_deadline_ms = 50;  // Watchdog budget: 100 ms.
  std::shared_ptr<FrontierSession> session =
      harness.service->OpenFrontier(std::move(spec), session_options);
  ASSERT_NE(session, nullptr);

  StopWatch watch;
  session->AwaitFor(30000);
  ASSERT_TRUE(session->Done());
  // Forced finish, not the rung completing: well before the 1.5 s wedge.
  EXPECT_LT(watch.ElapsedMillis(), 1000.0);
  EXPECT_TRUE(session->Degraded());
  // A watchdog fire is not a caller cancel.
  EXPECT_FALSE(session->Cancelled());
  EXPECT_GE(harness.service->Stats().watchdog_fires, 1u);
  const std::string metrics = harness.service->MetricsText();
  EXPECT_NE(metrics.find("moqo_watchdog_fires_total"), std::string::npos);
  session->Cancel();
  rt::FailpointRegistry::Global().DisarmAll();
  // The wedged worker wakes, stands down, and releases its slot.
  EXPECT_TRUE(WaitFor([&] { return harness.service->InFlight() == 0; },
                      10000));
}

// ---- Loopback chaos: the PR's acceptance run. --------------------------

TEST(ChaosTest, LoopbackSessionsSurviveInjectedFaultsEverywhere) {
  if (!rt::kFailpointsEnabled) {
    GTEST_SKIP() << "built with MOQO_FAILPOINTS=OFF";
  }
  const uint64_t seed = ChaosSeed();
  SCOPED_TRACE("MOQO_CHAOS_SEED=" + std::to_string(seed));
  ChaosHarness harness(ChaosServiceOptions(2));
  ASSERT_TRUE(harness.server->Start());
  const uint16_t port = harness.server->port();

  // The acceptance schedule: every site armed at probability(0.01).
  ArmSites(kServiceSites, 0.01, seed);
  ArmSites(kNetSites, 0.01, seed + 7);
  // Override: a DEAD disk tier (every probe errors). The dedicated
  // persist chaos test proves the tier serving; this run proves the tier
  // failing leaves PR-8 behavior intact — RAM misses fall through to
  // real optimizer runs, which also keeps the memo (and its memo.insert
  // site) in play under the one-slot chaos cache. A probabilistically
  // healthy tier would absorb those misses as promotions and starve the
  // memo of traffic.
  ASSERT_TRUE(rt::FailpointRegistry::Global().Arm("persist.tier.read",
                                                  "always:return_error"));

  std::atomic<int> opened{0};
  std::atomic<int> terminal{0};       // DONE or ERROR frame received.
  std::atomic<int> dropped{0};        // Connection killed, retries spent.
  std::atomic<int> monotonicity_violations{0};

  // One chaos client lifetime: open, stream, and on a killed connection
  // reconnect + re-OPEN (idempotent server-side) with seeded backoff. The
  // target alpha is unique per lifetime (fresh ladder work, no cache
  // absorption) but stable across its reopens (a retried open may land on
  // the cache — that is the cheap idempotent path working as intended).
  const auto run_one = [&](uint64_t client_seed, int dims, double alpha) {
    net::RetryOptions retry;
    retry.max_attempts = 4;
    retry.base_backoff_ms = 1;
    retry.max_backoff_ms = 20;
    retry.jitter_seed = client_seed;
    BlockingNetClient client;
    if (!client.ConnectWithRetry("127.0.0.1", port, retry)) {
      dropped.fetch_add(1);
      return;
    }
    for (int attempt = 0; attempt < 5; ++attempt) {
      if (attempt == 0) {
        if (!client.SendOpen(StarOpen(dims, alpha))) {
          if (!client.Reopen(retry)) continue;
        }
      } else if (!client.Reopen(retry)) {
        continue;
      }
      opened.fetch_add(1);
      // Each (re)open is a fresh session: monotonicity restarts.
      AlphaMonotone monotone;
      BlockingNetClient::Event event;
      while (client.NextEvent(&event, 30000)) {
        if (event.type == MsgType::kFrontierUpdate) {
          if (!monotone.Observe(event.frontier.alpha)) {
            monotonicity_violations.fetch_add(1);
          }
        } else if (event.type == MsgType::kDone ||
                   event.type == MsgType::kError) {
          terminal.fetch_add(1);
          client.SendClose();
          return;
        }
      }
      // EOF mid-stream: an injected net fault killed the connection.
    }
    dropped.fetch_add(1);
  };

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;  // 200 client lifetimes minimum.
  const auto run_batch = [&](int per_thread, uint64_t batch_tag) {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < per_thread; ++i) {
          const uint64_t id = batch_tag * 131071 + t * 8191 + i;
          run_one(seed ^ id, 2 + (t + i) % 2,
                  /*alpha=*/1.1 + 1e-6 * static_cast<double>(id % 100000));
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  };

  run_batch(kPerThread, 0);
  // Rarely-visited sites (one net.accept visit per connection at p=0.01)
  // may legitimately need more traffic before their first hit.
  int extra_batches = 0;
  while (!(AllSitesHit(kServiceSites) && AllSitesHit(kNetSites)) &&
         extra_batches < 15) {
    run_batch(5, static_cast<uint64_t>(++extra_batches));
  }

  // Zero hangs is enforced structurally (every read has a deadline);
  // every lifetime must have ended in a terminal frame — connection
  // kills are absorbed by reconnect + re-OPEN.
  EXPECT_GE(opened.load(), kThreads * kPerThread);
  EXPECT_EQ(dropped.load(), 0);
  EXPECT_GT(terminal.load(), 0);
  EXPECT_EQ(monotonicity_violations.load(), 0);

  rt::FailpointRegistry::Global().DisarmAll();
  // The connection table drains and no admission slot leaks.
  EXPECT_TRUE(WaitFor(
      [&] { return harness.server->Stats().connections_active == 0; },
      10000));
  EXPECT_TRUE(WaitFor([&] { return harness.service->InFlight() == 0; },
                      10000));

  // Every armed site fired, and the proof is scrape-visible.
  ExpectAllSitesHit(kServiceSites);
  ExpectAllSitesHit(kNetSites);
  const std::string metrics = harness.service->MetricsText();
  for (const SiteSpec& site : kServiceSites) {
    EXPECT_NE(metrics.find("moqo_failpoint_hits_total{site=\"" +
                           std::string(site.site) + "\"}"),
              std::string::npos)
        << site.site;
  }
  for (const SiteSpec& site : kNetSites) {
    EXPECT_NE(metrics.find("moqo_failpoint_hits_total{site=\"" +
                           std::string(site.site) + "\"}"),
              std::string::npos)
        << site.site;
  }
}

// ---- Persistence chaos: fault schedules across restart cycles. ---------

/// A SubmitAndWait request against the chaos star catalog; alpha varies
/// per call so each request is a distinct cache signature.
ServiceRequest ChaosStarRequest(
    const std::unordered_map<std::string,
                             std::shared_ptr<const Query>>& queries,
    int dims, double alpha) {
  ServiceRequest request;
  request.spec.query = queries.at("star" + std::to_string(dims));
  std::vector<Objective> objectives;
  for (int i = 0; i < dims; ++i) {
    objectives.push_back(static_cast<Objective>(i));
  }
  request.spec.objectives = ObjectiveSet(std::move(objectives));
  request.spec.algorithm = AlgorithmKind::kRta;
  request.spec.alpha = alpha;
  request.preference.weights = WeightVector::Uniform(dims);
  return request;
}

TEST(ChaosTest, PersistFaultsAndTornSnapshotsAcrossRestartsStayClean) {
  if (!rt::kFailpointsEnabled) {
    GTEST_SKIP() << "built with MOQO_FAILPOINTS=OFF";
  }
  const uint64_t seed = ChaosSeed();
  SCOPED_TRACE("MOQO_CHAOS_SEED=" + std::to_string(seed));

  const std::string dir = ::testing::TempDir() + "moqo_chaos_restart_" +
                          std::to_string(::getpid());
  const std::string snapshot_path = dir + "/moqo.snapshot";
  std::string cmd = "rm -rf " + dir;
  ASSERT_EQ(std::system(cmd.c_str()), 0);

  Catalog catalog = MakeTinyCatalog();
  std::unordered_map<std::string, std::shared_ptr<const Query>> queries;
  for (int dims = 2; dims <= 3; ++dims) {
    queries["star" + std::to_string(dims)] =
        std::make_shared<Query>(MakeStarQuery(&catalog, dims));
  }
  const auto restart_options = [&] {
    ServiceOptions options = ChaosServiceOptions(2);
    options.persist.directory = dir;  // Shared across generations.
    options.persist.restore_on_start = true;
    options.persist.snapshot_on_shutdown = true;
    return options;
  };
  const auto tear_snapshot = [&](int drop_bytes) {
    struct stat st;
    if (::stat(snapshot_path.c_str(), &st) != 0) return;
    if (st.st_size > drop_bytes) {
      EXPECT_EQ(::truncate(snapshot_path.c_str(), st.st_size - drop_bytes),
                0);
    }
  };

  // Probabilistic generations: persist faults fire at random through
  // snapshot writes, restores, demotions, and tier probes, and every
  // other generation restarts from a torn snapshot. Persistence is a
  // cache of a cache: NO request may fail, whatever the schedule does.
  constexpr SiteSpec kPersistSites[] = {
      {"persist.write", "return_error"},
      {"persist.read", "return_error"},
      {"persist.mmap", "return_error"},
      {"persist.tier.write", "return_error"},
      {"persist.tier.read", "return_error"},
  };
  ArmSites(kPersistSites, 0.2, seed + 17);
  for (int round = 0; round < 5; ++round) {
    {
      OptimizationService service(restart_options());
      for (int i = 0; i < 6; ++i) {
        ServiceResponse response = service.SubmitAndWait(ChaosStarRequest(
            queries, 2 + i % 2, 1.1 + 0.01 * (round * 6 + i)));
        EXPECT_EQ(response.status, ResponseStatus::kCompleted)
            << "round " << round << " request " << i;
      }
    }  // Teardown writes the next generation's snapshot (unless the
       // schedule eats it).
    // Every other generation boots from a torn file.
    if (round % 2 == 0) tear_snapshot(3 + round);
  }
  rt::FailpointRegistry::Global().DisarmAll();

  // Deterministic epilogue: each site in always-fire mode, so the suite
  // proves every degradation path individually (and AllSitesHit cannot
  // depend on the seed). First, a clean generation writes a good
  // snapshot.
  {
    OptimizationService service(restart_options());
    ServiceResponse response =
        service.SubmitAndWait(ChaosStarRequest(queries, 2, 1.05));
    ASSERT_EQ(response.status, ResponseStatus::kCompleted);
    ASSERT_TRUE(service.SnapshotNow());
  }
  // persist.read always: the restore open fails -> clean cold start.
  ASSERT_TRUE(rt::FailpointRegistry::Global().Arm("persist.read",
                                                  "always:return_error"));
  {
    ServiceOptions options = restart_options();
    options.persist.snapshot_on_shutdown = false;
    OptimizationService service(options);
    EXPECT_EQ(service.PersistStats().restored_entries(), 0u);
    EXPECT_EQ(service
                  .SubmitAndWait(ChaosStarRequest(queries, 2, 1.05))
                  .status,
              ResponseStatus::kCompleted);
  }
  rt::FailpointRegistry::Global().DisarmAll();
  // persist.mmap always: restore falls back to read(2) and still loads.
  ASSERT_TRUE(rt::FailpointRegistry::Global().Arm("persist.mmap",
                                                  "always:return_error"));
  {
    ServiceOptions options = restart_options();
    options.persist.snapshot_on_shutdown = false;
    OptimizationService service(options);
    EXPECT_GT(service.PersistStats().restored_entries(), 0u);
  }
  rt::FailpointRegistry::Global().DisarmAll();
  // persist.write always: the snapshot fails cleanly; the previous good
  // file survives (tmp + rename) for the next boot.
  ASSERT_TRUE(rt::FailpointRegistry::Global().Arm("persist.write",
                                                  "always:return_error"));
  {
    ServiceOptions options = restart_options();
    options.persist.restore_on_start = false;
    OptimizationService service(options);
    EXPECT_FALSE(service.SnapshotNow());
    EXPECT_GE(service.PersistStats().snapshot_failures, 1u);
  }
  rt::FailpointRegistry::Global().DisarmAll();
  {
    ServiceOptions options = restart_options();
    options.persist.snapshot_on_shutdown = false;
    OptimizationService service(options);
    EXPECT_GT(service.PersistStats().restored_entries(), 0u);
  }
  ExpectAllSitesHit(kPersistSites);
}

}  // namespace
}  // namespace moqo
