// Copyright (c) 2026 moqo authors. MIT license.
//
// Failpoint framework unit tests (PR 8): arm policies fire on exactly the
// visits they promise, probability schedules replay bit-exactly from
// their seed, actions inject what they claim, spec parsing accepts the
// documented grammar and nothing else, and hit counters reach the metrics
// rendering. The registry is process-global, so every test uses its own
// site names and disarms what it armed.

#include "rt/failpoint.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace moqo {
namespace rt {
namespace {

/// Arms `site` with `spec_text`, asserting the parse succeeded, and
/// disarms it again on scope exit so tests cannot leak armed sites into
/// each other (the registry is a process-global).
class ScopedArm {
 public:
  ScopedArm(const std::string& site, const std::string& spec_text)
      : site_(site) {
    EXPECT_TRUE(FailpointRegistry::Global().Arm(site, spec_text))
        << "spec failed to parse: " << spec_text;
  }
  ~ScopedArm() { FailpointRegistry::Global().Disarm(site_); }

 private:
  std::string site_;
};

TEST(FailpointTest, UnarmedSiteIsInert) {
  Failpoint& site = FailpointRegistry::Global().Register("fp_test.inert");
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(site.ShouldFail());
  EXPECT_EQ(site.hits(), 0u);
  EXPECT_EQ(site.visits(), 0u);  // Disarmed visits are not even counted.
}

TEST(FailpointTest, EveryNthFiresOnExactMultiples) {
  ScopedArm arm("fp_test.nth", "every_nth(3):return_error");
  Failpoint& site = FailpointRegistry::Global().Register("fp_test.nth");
  std::vector<int> fired;
  for (int visit = 1; visit <= 9; ++visit) {
    if (site.ShouldFail()) fired.push_back(visit);
  }
  EXPECT_EQ(fired, (std::vector<int>{3, 6, 9}));
  EXPECT_EQ(site.hits(), 3u);
  EXPECT_EQ(site.visits(), 9u);
}

TEST(FailpointTest, FirstNFiresThenGoesQuiet) {
  ScopedArm arm("fp_test.first", "first_n(2):return_error");
  Failpoint& site = FailpointRegistry::Global().Register("fp_test.first");
  EXPECT_TRUE(site.ShouldFail());
  EXPECT_TRUE(site.ShouldFail());
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(site.ShouldFail());
  EXPECT_EQ(site.hits(), 2u);
}

TEST(FailpointTest, AlwaysIsEveryFirst) {
  ScopedArm arm("fp_test.always", "always:return_error");
  Failpoint& site = FailpointRegistry::Global().Register("fp_test.always");
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(site.ShouldFail());
  EXPECT_EQ(site.hits(), 10u);
}

TEST(FailpointTest, ProbabilityScheduleReplaysFromSeed) {
  constexpr int kVisits = 2000;
  const auto schedule = [](const std::string& site_name,
                           const std::string& spec) {
    ScopedArm arm(site_name, spec);
    Failpoint& site = FailpointRegistry::Global().Register(site_name);
    std::vector<bool> fired;
    fired.reserve(kVisits);
    for (int i = 0; i < kVisits; ++i) fired.push_back(site.ShouldFail());
    return fired;
  };
  // Same seed — bit-identical schedule, even across distinct sites (the
  // draw is a pure function of seed and visit index).
  const std::vector<bool> a =
      schedule("fp_test.prob_a", "probability(0.5,seed=42):return_error");
  const std::vector<bool> b =
      schedule("fp_test.prob_b", "probability(0.5,seed=42):return_error");
  EXPECT_EQ(a, b);
  // Different seed — a different schedule (identical over 2000 draws at
  // p=0.5 has probability 2^-2000).
  const std::vector<bool> c =
      schedule("fp_test.prob_c", "probability(0.5,seed=43):return_error");
  EXPECT_NE(a, c);
  // The rate is roughly honored.
  const int hits_a = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(hits_a, kVisits / 4);
  EXPECT_LT(hits_a, 3 * kVisits / 4);
}

TEST(FailpointTest, ThrowActionThrowsFailpointError) {
  ScopedArm arm("fp_test.throw", "always:throw");
  Failpoint& site = FailpointRegistry::Global().Register("fp_test.throw");
  EXPECT_THROW(site.ShouldFail(), FailpointError);
  EXPECT_EQ(site.hits(), 1u);
}

TEST(FailpointTest, OomActionThrowsBadAlloc) {
  ScopedArm arm("fp_test.oom", "always:oom");
  Failpoint& site = FailpointRegistry::Global().Register("fp_test.oom");
  EXPECT_THROW(site.ShouldFail(), std::bad_alloc);
}

TEST(FailpointTest, DelayActionSleepsButDoesNotFail) {
  ScopedArm arm("fp_test.delay", "always:delay_ms(1)");
  Failpoint& site = FailpointRegistry::Global().Register("fp_test.delay");
  // A latency fault: the hit is counted, but the caller continues.
  EXPECT_FALSE(site.ShouldFail());
  EXPECT_EQ(site.hits(), 1u);
}

TEST(FailpointTest, RearmResetsCounters) {
  ScopedArm arm("fp_test.rearm", "always:return_error");
  Failpoint& site = FailpointRegistry::Global().Register("fp_test.rearm");
  EXPECT_TRUE(site.ShouldFail());
  EXPECT_EQ(site.hits(), 1u);
  EXPECT_TRUE(
      FailpointRegistry::Global().Arm("fp_test.rearm", "first_n(1):throw"));
  EXPECT_EQ(site.hits(), 0u);
  EXPECT_EQ(site.visits(), 0u);
  EXPECT_THROW(site.ShouldFail(), FailpointError);
}

TEST(FailpointTest, ParseSpecAcceptsTheDocumentedGrammar) {
  FailpointSpec spec;
  ASSERT_TRUE(FailpointRegistry::ParseSpec("off", &spec));
  EXPECT_EQ(spec.mode, ArmMode::kOff);

  ASSERT_TRUE(FailpointRegistry::ParseSpec("always:throw", &spec));
  EXPECT_EQ(spec.mode, ArmMode::kEveryNth);
  EXPECT_EQ(spec.n, 1u);
  EXPECT_EQ(spec.action, FailAction::kThrow);

  ASSERT_TRUE(FailpointRegistry::ParseSpec("every_nth(7):oom", &spec));
  EXPECT_EQ(spec.mode, ArmMode::kEveryNth);
  EXPECT_EQ(spec.n, 7u);
  EXPECT_EQ(spec.action, FailAction::kOom);

  ASSERT_TRUE(
      FailpointRegistry::ParseSpec("first_n(3):delay_ms(250)", &spec));
  EXPECT_EQ(spec.mode, ArmMode::kFirstN);
  EXPECT_EQ(spec.n, 3u);
  EXPECT_EQ(spec.action, FailAction::kDelayMs);
  EXPECT_EQ(spec.delay_ms, 250);

  ASSERT_TRUE(FailpointRegistry::ParseSpec(
      "probability(0.25,seed=99):return_error", &spec));
  EXPECT_EQ(spec.mode, ArmMode::kProbability);
  EXPECT_DOUBLE_EQ(spec.probability, 0.25);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_EQ(spec.action, FailAction::kReturnError);

  // The seed= prefix is optional.
  ASSERT_TRUE(
      FailpointRegistry::ParseSpec("probability(1,7):return_error", &spec));
  EXPECT_EQ(spec.seed, 7u);
}

TEST(FailpointTest, ParseSpecRejectsMalformedInput) {
  FailpointSpec spec;
  for (const char* bad : {
           "",                         // Nothing.
           "always",                   // Armed mode without an action.
           "off:throw",                // off takes no action.
           "every_nth:throw",          // Missing argument.
           "every_nth(0):throw",       // Period 0 never fires; reject.
           "every_nth(x):throw",       // Non-numeric.
           "probability(1.5):throw",   // p outside [0, 1].
           "probability(-1):throw",    // p outside [0, 1].
           "probability(0.5,seed=z):throw",  // Bad seed.
           "always:delay_ms",          // delay needs its argument.
           "always:explode",           // Unknown action.
           "sometimes:throw",          // Unknown mode.
           "always:throw(2)",          // throw takes no argument.
       }) {
    EXPECT_FALSE(FailpointRegistry::ParseSpec(bad, &spec))
        << "accepted malformed spec: " << bad;
  }
}

TEST(FailpointTest, ArmFromConfigSkipsMalformedEntries) {
  FailpointRegistry& registry = FailpointRegistry::Global();
  const size_t armed = registry.ArmFromConfig(
      "fp_test.cfg_a=always:return_error;garbage;"
      "fp_test.cfg_b=first_n(1):throw;fp_test.cfg_c=not_a_spec");
  EXPECT_EQ(armed, 2u);
  EXPECT_TRUE(registry.Register("fp_test.cfg_a").ShouldFail());
  EXPECT_THROW(registry.Register("fp_test.cfg_b").ShouldFail(),
               FailpointError);
  registry.Disarm("fp_test.cfg_a");
  registry.Disarm("fp_test.cfg_b");
}

TEST(FailpointTest, HitCountsReachMetricsText) {
  ScopedArm arm("fp_test.metrics", "always:return_error");
  Failpoint& site = FailpointRegistry::Global().Register("fp_test.metrics");
  EXPECT_TRUE(site.ShouldFail());
  EXPECT_TRUE(site.ShouldFail());
  const std::string text = FailpointRegistry::Global().MetricsText();
  EXPECT_NE(text.find("# TYPE moqo_failpoint_hits_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("moqo_failpoint_hits_total{site=\"fp_test.metrics\"} 2"),
            std::string::npos);
}

TEST(FailpointTest, MacroSiteCompilesAndInjects) {
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "built with MOQO_FAILPOINTS=OFF; sites compile away";
  }
  const auto guarded = []() -> int {
    MOQO_FAILPOINT_RETURN("fp_test.macro", -1);
    return 0;
  };
  EXPECT_EQ(guarded(), 0);  // Unarmed: the site is transparent.
  ScopedArm arm("fp_test.macro", "always:return_error");
  EXPECT_EQ(guarded(), -1);  // Armed: the error return is taken.
}

}  // namespace
}  // namespace rt
}  // namespace moqo
