// Copyright (c) 2026 moqo authors. MIT license.
//
// NetServer loopback tests (PR 7). The acceptance bar: frontiers served
// over the wire are byte-identical to what an in-process FrontierSession
// publishes for the same spec and ladder; protocol violations and unknown
// queries fail the connection with a typed ERROR; connection churn with
// concurrent cancels tears down cleanly (this file runs under TSan in
// CI). Newest-wins drop mechanics are covered deterministically in
// frame_codec_test.cc (PushQueue) — over a real socket they are
// timing-dependent by design.

#include "net/net_server.h"

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/blocking_client.h"
#include "rt/failpoint.h"
#include "service/optimization_service.h"
#include "testing/test_helpers.h"

namespace moqo {
namespace {

using net::BlockingNetClient;
using net::EncodeFrontierUpdate;
using net::ErrorCode;
using net::FrontierUpdateMsg;
using net::MakeFrontierUpdate;
using net::MsgType;
using net::NetOptions;
using net::NetServer;
using net::OpenFrontierMsg;
using net::SelectMsg;
using testing::MakeStarQuery;
using testing::MakeTinyCatalog;
using testing::SmallOperatorSpace;

constexpr int64_t kEventTimeoutMs = 30000;

/// Polls `condition` for up to `ms` milliseconds (loopback teardown is
/// asynchronous: the loop thread sees EOF on its next wake).
bool WaitFor(const std::function<bool()>& condition, int ms) {
  for (int i = 0; i < ms; ++i) {
    if (condition()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return condition();
}

/// A service + server + catalog bundle: every test serves the tiny star
/// catalog under query ids "star2".."star4".
struct Harness {
  explicit Harness(ServiceOptions service_options,
                   NetOptions net_options = {}) {
    catalog = MakeTinyCatalog();
    for (int dims = 2; dims <= 3; ++dims) {
      queries["star" + std::to_string(dims)] =
          std::make_shared<Query>(MakeStarQuery(&catalog, dims));
    }
    service =
        std::make_unique<OptimizationService>(std::move(service_options));
    net_options.resolve_query =
        [this](const std::string& id) -> std::shared_ptr<const Query> {
      auto it = queries.find(id);
      return it == queries.end() ? nullptr : it->second;
    };
    server = std::make_unique<NetServer>(service.get(), net_options);
  }

  ~Harness() { server->Stop(); }  // Before the service it serves.

  Catalog catalog;
  std::unordered_map<std::string, std::shared_ptr<const Query>> queries;
  std::unique_ptr<OptimizationService> service;
  std::unique_ptr<NetServer> server;
};

ServiceOptions FreshRunOptions(int workers) {
  ServiceOptions options;
  options.num_workers = workers;
  options.operators = SmallOperatorSpace();
  // Every open optimizes from scratch: the byte-identity comparison needs
  // two independent runs, not one run and its cache echo.
  options.enable_cache = false;
  options.enable_coalescing = false;
  return options;
}

/// The OPEN frame used throughout: RTA-routed 3-dim star, 3-rung ladder —
/// the same shape the in-process session tests refine.
OpenFrontierMsg StarOpen(const std::string& query_id, int num_objectives) {
  OpenFrontierMsg open;
  open.query_id = query_id;
  for (int i = 0; i < num_objectives; ++i) {
    open.objectives.push_back(static_cast<uint8_t>(i));
  }
  open.algorithm = static_cast<int8_t>(AlgorithmKind::kRta);
  open.alpha = 1.25;
  open.alpha_start = 3.0;
  open.max_steps = 3;
  return open;
}

/// The in-process twin of StarOpen for the same harness.
std::shared_ptr<FrontierSession> OpenTwinSession(Harness* harness,
                                                 const std::string& id,
                                                 int num_objectives) {
  ProblemSpec spec;
  spec.query = harness->queries[id];
  std::vector<Objective> objectives;
  for (int i = 0; i < num_objectives; ++i) {
    objectives.push_back(static_cast<Objective>(i));
  }
  spec.objectives = ObjectiveSet(std::move(objectives));
  spec.algorithm = AlgorithmKind::kRta;
  spec.alpha = 1.25;
  SessionOptions options;
  options.alpha_start = 3.0;
  options.max_steps = 3;
  return harness->service->OpenFrontier(std::move(spec), options);
}

/// Canonical frontier bytes: the encoded FRONTIER_UPDATE with step_ms
/// zeroed (wall time is the one legitimately run-dependent field).
std::string FrontierBytes(FrontierUpdateMsg msg) {
  msg.step_ms = 0;
  return EncodeFrontierUpdate(msg);
}

TEST(NetServerTest, WireFrontiersByteIdenticalToInProcessSession) {
  Harness harness(FreshRunOptions(2));
  ASSERT_TRUE(harness.server->Start());

  BlockingNetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server->port()));
  ASSERT_TRUE(client.SendOpen(StarOpen("star3", 3)));

  std::vector<std::string> wire_frontiers;
  BlockingNetClient::Event event;
  ASSERT_TRUE(client.AwaitDone(
      &event,
      [&](const FrontierUpdateMsg& update) {
        wire_frontiers.push_back(FrontierBytes(update));
      },
      kEventTimeoutMs));
  EXPECT_EQ(event.done.target_reached, 1);
  EXPECT_EQ(event.done.steps_published,
            static_cast<int32_t>(wire_frontiers.size()));

  // Run the identical session in-process and encode its history through
  // the same summary builder.
  auto session = OpenTwinSession(&harness, "star3", 3);
  ASSERT_NE(session, nullptr);
  ASSERT_TRUE(session->AwaitTarget());
  std::vector<std::string> local_frontiers;
  for (const RefinedFrontier& refined : session->History()) {
    local_frontiers.push_back(FrontierBytes(
        MakeFrontierUpdate(refined.step, refined.alpha, refined.from_cache,
                           refined.step_ms, *refined.plan_set)));
  }
  session->Cancel();

  // Byte-identical: same steps, same alphas (bit-exact), same cost
  // matrices (bit-exact), same order.
  ASSERT_GE(wire_frontiers.size(), 2u);  // Quick prelude + rungs.
  EXPECT_EQ(wire_frontiers, local_frontiers);

  client.SendClose();
}

TEST(NetServerTest, SelectOverWireMatchesInProcessSelect) {
  Harness harness(FreshRunOptions(2));
  ASSERT_TRUE(harness.server->Start());

  BlockingNetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server->port()));
  ASSERT_TRUE(client.SendOpen(StarOpen("star3", 3)));
  BlockingNetClient::Event event;
  ASSERT_TRUE(client.AwaitDone(&event, nullptr, kEventTimeoutMs));

  SelectMsg select;
  select.tag = 77;
  select.weights = {1.0, 2.0, 3.0};
  ASSERT_TRUE(client.SendSelect(select));
  ASSERT_TRUE(client.NextEvent(&event, kEventTimeoutMs));
  ASSERT_EQ(event.type, MsgType::kSelectResult);
  EXPECT_EQ(event.select_result.tag, 77u);

  auto session = OpenTwinSession(&harness, "star3", 3);
  ASSERT_TRUE(session->AwaitTarget());
  Preference preference;
  WeightVector weights(3);
  weights[0] = 1.0;
  weights[1] = 2.0;
  weights[2] = 3.0;
  preference.weights = weights;
  const SessionSelection local = session->Select(preference);
  session->Cancel();

  EXPECT_EQ(event.select_result.step, local.step);
  EXPECT_EQ(event.select_result.alpha, local.alpha);
  EXPECT_EQ(event.select_result.plan_index, local.selection.index);
  EXPECT_EQ(event.select_result.weighted_cost,
            local.selection.weighted_cost);
  ASSERT_EQ(static_cast<int>(event.select_result.cost.size()),
            local.selection.cost.size());
  for (int i = 0; i < local.selection.cost.size(); ++i) {
    EXPECT_EQ(event.select_result.cost[i], local.selection.cost[i]);
  }
  client.SendClose();
}

TEST(NetServerTest, CancelOverWireCompletesWithDoneAndSelectStillWorks) {
  Harness harness(FreshRunOptions(2));
  ASSERT_TRUE(harness.server->Start());

  BlockingNetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server->port()));
  OpenFrontierMsg open = StarOpen("star3", 3);
  open.alpha = 1.01;  // Tight target, long ladder: cancel lands mid-flight.
  open.alpha_start = 8.0;
  open.max_steps = 8;
  ASSERT_TRUE(client.SendOpen(open));
  ASSERT_TRUE(client.SendCancel());

  int updates = 0;
  BlockingNetClient::Event event;
  ASSERT_TRUE(client.AwaitDone(
      &event, [&](const FrontierUpdateMsg&) { ++updates; },
      kEventTimeoutMs));
  // Cancelled mid-ladder or (if the tiny query outran the CANCEL frame)
  // completed — either way the session is over and announced it.
  EXPECT_TRUE(event.done.cancelled == 1 || event.done.target_reached == 1);

  // The anytime contract survives completion: SELECT still answers from
  // whatever the session had published.
  SelectMsg select;
  select.tag = 5;
  ASSERT_TRUE(client.SendSelect(select));
  ASSERT_TRUE(client.NextEvent(&event, kEventTimeoutMs));
  ASSERT_EQ(event.type, MsgType::kSelectResult);
  if (updates > 0) EXPECT_GE(event.select_result.plan_index, 0);
  client.SendClose();
}

TEST(NetServerTest, ProtocolViolationsGetTypedErrorThenClose) {
  Harness harness(FreshRunOptions(1));
  ASSERT_TRUE(harness.server->Start());

  // SELECT before OPEN.
  {
    BlockingNetClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", harness.server->port()));
    SelectMsg select;
    ASSERT_TRUE(client.SendSelect(select));
    BlockingNetClient::Event event;
    ASSERT_TRUE(client.NextEvent(&event, kEventTimeoutMs));
    ASSERT_EQ(event.type, MsgType::kError);
    EXPECT_EQ(event.error.code, static_cast<uint8_t>(ErrorCode::kProtocol));
    EXPECT_FALSE(client.NextEvent(&event, kEventTimeoutMs));  // EOF.
  }
  // Unknown query id.
  {
    BlockingNetClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", harness.server->port()));
    ASSERT_TRUE(client.SendOpen(StarOpen("no_such_query", 3)));
    BlockingNetClient::Event event;
    ASSERT_TRUE(client.NextEvent(&event, kEventTimeoutMs));
    ASSERT_EQ(event.type, MsgType::kError);
    EXPECT_EQ(event.error.code,
              static_cast<uint8_t>(ErrorCode::kUnknownQuery));
    EXPECT_FALSE(client.NextEvent(&event, kEventTimeoutMs));
  }
  // Garbage header: no ERROR frame is promised (the stream is unframed),
  // just a close.
  {
    BlockingNetClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", harness.server->port()));
    ASSERT_TRUE(client.SendRaw("this is not a moqo frame"));
    BlockingNetClient::Event event;
    client.NextEvent(&event, kEventTimeoutMs);  // ERROR or EOF.
    EXPECT_FALSE(client.NextEvent(&event, kEventTimeoutMs));
  }
  EXPECT_TRUE(WaitFor(
      [&] { return harness.server->Stats().connections_active == 0; },
      5000));
  EXPECT_GE(harness.server->Stats().protocol_errors, 3u);
}

TEST(NetServerTest, ConnectionChurnWithConcurrentCancels) {
  ServiceOptions options = FreshRunOptions(2);
  Harness harness(options);
  ASSERT_TRUE(harness.server->Start());
  const uint16_t port = harness.server->port();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        BlockingNetClient client;
        if (!client.Connect("127.0.0.1", port)) {
          failures.fetch_add(1);
          continue;
        }
        OpenFrontierMsg open = StarOpen(t % 2 == 0 ? "star2" : "star3",
                                        t % 2 == 0 ? 2 : 3);
        open.quick_first = i % 2;
        if (!client.SendOpen(open)) failures.fetch_add(1);
        switch (i % 3) {
          case 0:
            // Abrupt disconnect mid-session: server must cancel + reap.
            client.Disconnect();
            break;
          case 1: {
            // Cancel, then vanish without reading the DONE.
            client.SendCancel();
            client.Disconnect();
            break;
          }
          default: {
            BlockingNetClient::Event event;
            if (!client.AwaitDone(&event, nullptr, kEventTimeoutMs)) {
              failures.fetch_add(1);
            }
            client.SendClose();
            break;
          }
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(WaitFor(
      [&] { return harness.server->Stats().connections_active == 0; },
      10000));
  const net::NetStatsSnapshot stats = harness.server->Stats();
  EXPECT_EQ(stats.connections_accepted,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.protocol_errors, 0u);
  // Every refining ladder was reaped: no session leaks a slot.
  EXPECT_TRUE(WaitFor([&] { return harness.service->InFlight() == 0; },
                      10000));
}

TEST(NetServerTest, MetricsTextCoversNetFamily) {
  Harness harness(FreshRunOptions(1));
  ASSERT_TRUE(harness.server->Start());
  BlockingNetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server->port()));
  ASSERT_TRUE(client.SendOpen(StarOpen("star2", 2)));
  BlockingNetClient::Event event;
  ASSERT_TRUE(client.AwaitDone(&event, nullptr, kEventTimeoutMs));
  client.SendClose();

  const std::string text = harness.service->MetricsText();
  EXPECT_NE(text.find("# TYPE moqo_net_connections_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("moqo_net_bytes_total{direction=\"in\"} "),
            std::string::npos);
  EXPECT_NE(text.find("moqo_net_bytes_total{direction=\"out\"} "),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE moqo_net_push_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("moqo_net_pushes_total "), std::string::npos);
  EXPECT_NE(text.find("moqo_net_sessions_total 1"), std::string::npos);

  const net::NetStatsSnapshot stats = harness.server->Stats();
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_GT(stats.bytes_in, 0u);
  EXPECT_GT(stats.bytes_out, 0u);
  EXPECT_GT(stats.pushes_sent, 0u);
}

TEST(NetServerTest, ServerStopWithLiveConnectionsTearsDownCleanly) {
  Harness harness(FreshRunOptions(2));
  ASSERT_TRUE(harness.server->Start());
  BlockingNetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server->port()));
  OpenFrontierMsg open = StarOpen("star3", 3);
  open.alpha = 1.01;
  open.alpha_start = 8.0;
  open.max_steps = 8;
  ASSERT_TRUE(client.SendOpen(open));
  // Stop while the ladder is (likely) still refining: the server must
  // remove callbacks, cancel the session, and join without hanging.
  harness.server->Stop();
  EXPECT_TRUE(WaitFor([&] { return harness.service->InFlight() == 0; },
                      10000));
  // The client observes EOF (possibly after buffered frames).
  BlockingNetClient::Event event;
  while (client.NextEvent(&event, 1000)) {
  }
  SUCCEED();
}

TEST(NetServerTest, StopRacingDelayedPushEncodeTearsDownCleanly) {
  // Regression (PR 8): Stop() used to race in-flight OnRefined encodes —
  // a rung worker could be building/enqueuing a FRONTIER_UPDATE for a
  // connection the stop path was concurrently tearing down. Found by
  // stretching the encode window with a delay_ms failpoint; the fix keeps
  // the closed flag and outbox under one lock and fences the callback.
  if (!rt::kFailpointsEnabled) {
    GTEST_SKIP() << "built with MOQO_FAILPOINTS=OFF";
  }
  ASSERT_TRUE(rt::FailpointRegistry::Global().Arm("net.push.encode",
                                                  "always:delay_ms(20)"));
  Harness harness(FreshRunOptions(2));
  ASSERT_TRUE(harness.server->Start());
  std::vector<std::unique_ptr<BlockingNetClient>> clients;
  for (int i = 0; i < 3; ++i) {
    clients.push_back(std::make_unique<BlockingNetClient>());
    ASSERT_TRUE(clients.back()->Connect("127.0.0.1", harness.server->port()));
    OpenFrontierMsg open = StarOpen("star3", 3);
    open.alpha = 1.01;
    open.alpha_start = 8.0;
    open.max_steps = 8;
    ASSERT_TRUE(clients.back()->SendOpen(open));
  }
  // Give the ladders time to start pushing, then stop mid-encode: every
  // in-flight delayed encode is now racing the connection teardown.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  harness.server->Stop();
  rt::FailpointRegistry::Global().DisarmAll();
  EXPECT_TRUE(WaitFor([&] { return harness.service->InFlight() == 0; },
                      10000));
  EXPECT_EQ(harness.server->Stats().connections_active, 0u);
  for (auto& client : clients) {
    BlockingNetClient::Event event;
    while (client->NextEvent(&event, 1000)) {
    }
  }
}

TEST(NetServerTest, ThrowingPushEncodeDropsPushButDoneStillArrives) {
  // A push that dies inside the refinement callback must cost only that
  // push: the exception is fenced at the subscriber boundary (counted as
  // a dropped push) and the session still terminates with DONE.
  if (!rt::kFailpointsEnabled) {
    GTEST_SKIP() << "built with MOQO_FAILPOINTS=OFF";
  }
  ASSERT_TRUE(
      rt::FailpointRegistry::Global().Arm("net.push.encode", "always:throw"));
  Harness harness(FreshRunOptions(2));
  ASSERT_TRUE(harness.server->Start());
  BlockingNetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server->port()));
  ASSERT_TRUE(client.SendOpen(StarOpen("star3", 3)));
  int updates = 0;
  BlockingNetClient::Event event;
  ASSERT_TRUE(client.AwaitDone(
      &event, [&](const FrontierUpdateMsg&) { ++updates; },
      kEventTimeoutMs));
  EXPECT_EQ(updates, 0);  // Every FRONTIER_UPDATE died at the failpoint.
  EXPECT_GE(harness.server->Stats().pushes_dropped, 1u);
  rt::FailpointRegistry::Global().DisarmAll();
  client.SendClose();
}

TEST(NetServerTest, QuietConnectionsReapedOnHandshakeAndIdleDeadlines) {
  NetOptions net_options;
  net_options.handshake_timeout_ms = 50;
  net_options.idle_timeout_ms = 150;
  Harness harness(FreshRunOptions(2), net_options);
  ASSERT_TRUE(harness.server->Start());

  // Client A connects and never sends a frame: reaped at the handshake
  // deadline with a typed ERROR.
  BlockingNetClient silent;
  ASSERT_TRUE(silent.Connect("127.0.0.1", harness.server->port()));

  // Client B completes a session, then goes quiet without closing:
  // reaped at the idle deadline (server pushes counted as activity, so
  // the clock only starts once the ladder stops talking).
  BlockingNetClient idle;
  ASSERT_TRUE(idle.Connect("127.0.0.1", harness.server->port()));
  ASSERT_TRUE(idle.SendOpen(StarOpen("star3", 3)));
  BlockingNetClient::Event event;
  ASSERT_TRUE(idle.AwaitDone(&event, nullptr, kEventTimeoutMs));

  EXPECT_TRUE(WaitFor(
      [&] { return harness.server->Stats().connections_reaped >= 2; },
      10000));
  // The reap is announced, not silent: if any frame reaches the client
  // before EOF, it is the timeout ERROR.
  if (silent.NextEvent(&event, 1000)) {
    EXPECT_EQ(event.type, MsgType::kError);
    EXPECT_EQ(static_cast<ErrorCode>(event.error.code), ErrorCode::kTimeout);
  }
  EXPECT_TRUE(WaitFor(
      [&] { return harness.server->Stats().connections_active == 0; },
      10000));
  EXPECT_TRUE(WaitFor([&] { return harness.service->InFlight() == 0; },
                      10000));
}

TEST(NetServerTest, ConnectWithRetryAndReopenRecoverTheStream) {
  Harness harness(FreshRunOptions(2));
  ASSERT_TRUE(harness.server->Start());
  net::RetryOptions retry;
  retry.max_attempts = 3;
  retry.base_backoff_ms = 1;
  retry.jitter_seed = 7;

  BlockingNetClient client;
  ASSERT_TRUE(
      client.ConnectWithRetry("127.0.0.1", harness.server->port(), retry));
  // Reopen before any OPEN was sent has nothing to replay.
  EXPECT_FALSE(client.Reopen(retry));

  ASSERT_TRUE(client.SendOpen(StarOpen("star3", 3)));
  BlockingNetClient::Event event;
  ASSERT_TRUE(client.AwaitDone(&event, nullptr, kEventTimeoutMs));

  // Simulate a dropped connection: Reopen reconnects and re-sends the
  // remembered OPEN; the server replays the stream to DONE again.
  client.Disconnect();
  ASSERT_TRUE(client.Reopen(retry));
  ASSERT_TRUE(client.AwaitDone(&event, nullptr, kEventTimeoutMs));
  EXPECT_EQ(event.done.target_reached, 1);
  client.SendClose();

  // Against a dead endpoint, retries are bounded and fail cleanly.
  harness.server->Stop();
  EXPECT_FALSE(client.Reopen(retry));
}

TEST(NetServerTest, ErrorCodeNamesAreStable) {
  // The names are printed by clients and keyed on by log pipelines; the
  // values are wire contract (README, protocol table).
  EXPECT_STREQ(net::ErrorCodeName(ErrorCode::kProtocol), "protocol");
  EXPECT_STREQ(net::ErrorCodeName(ErrorCode::kUnknownQuery), "unknown_query");
  EXPECT_STREQ(net::ErrorCodeName(ErrorCode::kRejected), "rejected");
  EXPECT_STREQ(net::ErrorCodeName(ErrorCode::kInternal), "internal");
  EXPECT_STREQ(net::ErrorCodeName(ErrorCode::kOverloaded), "overloaded");
  EXPECT_STREQ(net::ErrorCodeName(ErrorCode::kTimeout), "timeout");
  EXPECT_STREQ(net::ErrorCodeName(static_cast<ErrorCode>(250)), "unknown");
}

}  // namespace
}  // namespace moqo
