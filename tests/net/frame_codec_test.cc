// Copyright (c) 2026 moqo authors. MIT license.
//
// Wire-codec tests (PR 7): every message type round-trips bit-exactly,
// the incremental FrameDecoder survives arbitrarily torn reads, and
// malformed input (oversized declarations, garbage headers, truncated
// payloads) is rejected, never buffered. Also covers the PushQueue
// newest-wins backpressure policy, which is deterministic here and only
// timing-dependent through a real socket.

#include "net/wire.h"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/push_queue.h"

namespace moqo {
namespace net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Feeds one encoded frame through a decoder and returns its payload,
/// asserting type and clean consumption.
std::vector<uint8_t> DecodeOneFrame(const std::string& frame,
                                    MsgType expected_type) {
  FrameDecoder decoder;
  decoder.Feed(frame.data(), frame.size());
  MsgType type;
  std::vector<uint8_t> payload;
  EXPECT_EQ(decoder.Next(&type, &payload), FrameDecoder::Status::kFrame);
  EXPECT_EQ(type, expected_type);
  EXPECT_EQ(decoder.Next(&type, &payload), FrameDecoder::Status::kNeedMore);
  return payload;
}

TEST(NetFrameTest, OpenFrontierRoundTripsEveryField) {
  OpenFrontierMsg msg;
  msg.query_id = "tpch_q5";
  msg.objectives = {0, 2, 5};
  msg.algorithm = 1;
  msg.alpha = 1.25;
  msg.parallelism = 4;
  msg.alpha_start = 8.0;
  msg.alpha_target = 1.0625;
  msg.max_steps = 6;
  msg.step_deadline_ms = 1500;
  msg.quick_first = 0;

  const std::vector<uint8_t> payload =
      DecodeOneFrame(EncodeOpenFrontier(msg), MsgType::kOpenFrontier);
  OpenFrontierMsg decoded;
  ASSERT_TRUE(DecodeOpenFrontier(payload.data(), payload.size(), &decoded));
  EXPECT_EQ(decoded.query_id, msg.query_id);
  EXPECT_EQ(decoded.objectives, msg.objectives);
  EXPECT_EQ(decoded.algorithm, msg.algorithm);
  EXPECT_EQ(decoded.alpha, msg.alpha);
  EXPECT_EQ(decoded.parallelism, msg.parallelism);
  EXPECT_EQ(decoded.alpha_start, msg.alpha_start);
  EXPECT_EQ(decoded.alpha_target, msg.alpha_target);
  EXPECT_EQ(decoded.max_steps, msg.max_steps);
  EXPECT_EQ(decoded.step_deadline_ms, msg.step_deadline_ms);
  EXPECT_EQ(decoded.quick_first, msg.quick_first);
}

TEST(NetFrameTest, SelectRoundTripsWeightsAndBounds) {
  SelectMsg msg;
  msg.tag = 0xdeadbeefcafe1234ull;
  msg.weights = {0.5, 0.25, 1.0 / 3.0};  // 1/3 is not exactly representable.
  msg.bounds = {kInf, 42.5, kInf};

  const std::vector<uint8_t> payload =
      DecodeOneFrame(EncodeSelect(msg), MsgType::kSelect);
  SelectMsg decoded;
  ASSERT_TRUE(DecodeSelect(payload.data(), payload.size(), &decoded));
  EXPECT_EQ(decoded.tag, msg.tag);
  EXPECT_EQ(decoded.weights, msg.weights);  // Bit-exact, including +inf.
  EXPECT_EQ(decoded.bounds, msg.bounds);
}

TEST(NetFrameTest, FrontierUpdateCostMatrixIsBitExact) {
  FrontierUpdateMsg msg;
  msg.step = 3;
  msg.alpha = kInf;  // The quick-mode frontier's "no guarantee" alpha.
  msg.from_cache = 1;
  msg.step_ms = 0.125;
  msg.dims = 3;
  // Values chosen to have non-trivial mantissas.
  msg.costs = {1.0 / 3.0, 2.0 / 7.0, 1e-300, 3.14159265358979,
               1e300,     0.1,       0.2,    0.3, 123456.789};

  const std::vector<uint8_t> payload =
      DecodeOneFrame(EncodeFrontierUpdate(msg), MsgType::kFrontierUpdate);
  FrontierUpdateMsg decoded;
  ASSERT_TRUE(
      DecodeFrontierUpdate(payload.data(), payload.size(), &decoded));
  EXPECT_EQ(decoded.step, msg.step);
  EXPECT_EQ(decoded.alpha, msg.alpha);
  EXPECT_EQ(decoded.from_cache, msg.from_cache);
  EXPECT_EQ(decoded.step_ms, msg.step_ms);
  EXPECT_EQ(decoded.dims, msg.dims);
  EXPECT_EQ(decoded.num_plans(), 3u);
  EXPECT_EQ(decoded.costs, msg.costs);
  // Bit-exactness, not just value equality: re-encoding reproduces the
  // identical frame.
  EXPECT_EQ(EncodeFrontierUpdate(decoded), EncodeFrontierUpdate(msg));
}

TEST(NetFrameTest, SelectResultDoneAndErrorRoundTrip) {
  SelectResultMsg result;
  result.tag = 7;
  result.step = 2;
  result.alpha = 1.5;
  result.plan_index = 4;
  result.weighted_cost = 99.75;
  result.cost = {1.5, 2.5};
  std::vector<uint8_t> payload =
      DecodeOneFrame(EncodeSelectResult(result), MsgType::kSelectResult);
  SelectResultMsg result_decoded;
  ASSERT_TRUE(DecodeSelectResult(payload.data(), payload.size(),
                                 &result_decoded));
  EXPECT_EQ(result_decoded.tag, result.tag);
  EXPECT_EQ(result_decoded.step, result.step);
  EXPECT_EQ(result_decoded.plan_index, result.plan_index);
  EXPECT_EQ(result_decoded.weighted_cost, result.weighted_cost);
  EXPECT_EQ(result_decoded.cost, result.cost);

  DoneMsg done;
  done.target_reached = 1;
  done.shed = 1;
  done.steps_published = 5;
  done.best_alpha = 1.0625;
  payload = DecodeOneFrame(EncodeDone(done), MsgType::kDone);
  DoneMsg done_decoded;
  ASSERT_TRUE(DecodeDone(payload.data(), payload.size(), &done_decoded));
  EXPECT_EQ(done_decoded.target_reached, 1);
  EXPECT_EQ(done_decoded.cancelled, 0);
  EXPECT_EQ(done_decoded.shed, 1);
  EXPECT_EQ(done_decoded.steps_published, 5);
  EXPECT_EQ(done_decoded.best_alpha, done.best_alpha);

  payload = DecodeOneFrame(EncodeError(ErrorCode::kUnknownQuery, "no q17"),
                           MsgType::kError);
  ErrorMsg error;
  ASSERT_TRUE(DecodeError(payload.data(), payload.size(), &error));
  EXPECT_EQ(error.code, static_cast<uint8_t>(ErrorCode::kUnknownQuery));
  EXPECT_EQ(error.message, "no q17");

  // The two bodyless client frames.
  EXPECT_TRUE(DecodeOneFrame(EncodeCancel(), MsgType::kCancel).empty());
  EXPECT_TRUE(DecodeOneFrame(EncodeClose(), MsgType::kClose).empty());
}

TEST(NetFrameTest, DecoderReassemblesByteByByteFeed) {
  // Worst-case torn reads: three frames delivered one byte at a time must
  // come out whole, in order.
  SelectMsg select;
  select.tag = 42;
  select.weights = {1.0, 2.0};
  const std::string stream =
      EncodeCancel() + EncodeSelect(select) + EncodeClose();

  FrameDecoder decoder;
  std::vector<MsgType> types;
  MsgType type;
  std::vector<uint8_t> payload;
  for (char byte : stream) {
    decoder.Feed(&byte, 1);
    while (decoder.Next(&type, &payload) == FrameDecoder::Status::kFrame) {
      types.push_back(type);
      if (type == MsgType::kSelect) {
        SelectMsg decoded;
        EXPECT_TRUE(DecodeSelect(payload.data(), payload.size(), &decoded));
        EXPECT_EQ(decoded.tag, 42u);
      }
    }
  }
  EXPECT_EQ(types, (std::vector<MsgType>{MsgType::kCancel, MsgType::kSelect,
                                         MsgType::kClose}));
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(NetFrameTest, OversizedDeclarationIsFatalAndSticky) {
  FrameDecoder decoder(/*max_frame_bytes=*/64);
  // A header declaring a 65-byte payload: legal magic/version, too big.
  OpenFrontierMsg msg;
  msg.query_id = std::string(100, 'x');  // Payload well over 64 bytes.
  const std::string frame = EncodeOpenFrontier(msg);
  decoder.Feed(frame.data(), frame.size());
  MsgType type;
  std::vector<uint8_t> payload;
  EXPECT_EQ(decoder.Next(&type, &payload),
            FrameDecoder::Status::kOversized);
  // Sticky: feeding a perfectly valid frame afterwards cannot resync.
  const std::string ok = EncodeCancel();
  decoder.Feed(ok.data(), ok.size());
  EXPECT_EQ(decoder.Next(&type, &payload),
            FrameDecoder::Status::kOversized);
}

TEST(NetFrameTest, GarbageHeaderIsFatal) {
  FrameDecoder decoder;
  const char garbage[] = "GET / HTTP/1.1\r\n";  // Wrong protocol entirely.
  decoder.Feed(garbage, sizeof(garbage) - 1);
  MsgType type;
  std::vector<uint8_t> payload;
  EXPECT_EQ(decoder.Next(&type, &payload),
            FrameDecoder::Status::kBadHeader);

  // Wrong version with the right magic is equally fatal.
  FrameDecoder versioned;
  std::string frame = EncodeCancel();
  frame[2] = 9;  // version byte
  versioned.Feed(frame.data(), frame.size());
  EXPECT_EQ(versioned.Next(&type, &payload),
            FrameDecoder::Status::kBadHeader);
}

TEST(NetFrameTest, TruncatedAndOverlongPayloadsFailDecode) {
  SelectMsg msg;
  msg.tag = 9;
  msg.weights = {1.0, 2.0, 3.0};
  const std::string frame = EncodeSelect(msg);
  const uint8_t* payload =
      reinterpret_cast<const uint8_t*>(frame.data()) + kHeaderBytes;
  const size_t payload_size = frame.size() - kHeaderBytes;

  SelectMsg decoded;
  ASSERT_TRUE(DecodeSelect(payload, payload_size, &decoded));
  // Every strict prefix fails cleanly.
  for (size_t cut = 0; cut < payload_size; ++cut) {
    EXPECT_FALSE(DecodeSelect(payload, cut, &decoded)) << "cut=" << cut;
  }
  // Trailing junk is rejected too (payload length must match exactly).
  std::vector<uint8_t> padded(payload, payload + payload_size);
  padded.push_back(0);
  EXPECT_FALSE(DecodeSelect(padded.data(), padded.size(), &decoded));

  // A hostile element count that promises more doubles than bytes remain
  // must be rejected, not allocated.
  std::vector<uint8_t> hostile = {8, 0, 0, 0, 0, 0, 0, 0,  // tag
                                  0xff, 0xff, 0xff, 0x7f};  // count 2^31-1
  EXPECT_FALSE(DecodeSelect(hostile.data(), hostile.size(), &decoded));
}

TEST(NetFrameTest, PushQueueDropsOldestFrontierNeverControl) {
  PushQueue queue(/*max_queued_pushes=*/2);
  EXPECT_EQ(queue.Push("f0", true, 0), 0u);
  EXPECT_EQ(queue.Push("done", false, 0), 0u);
  EXPECT_EQ(queue.Push("f1", true, 0), 0u);
  // Third frontier frame: f0 (the oldest update) goes, DONE stays.
  EXPECT_EQ(queue.Push("f2", true, 0), 1u);
  std::vector<std::string> order;
  while (!queue.empty()) {
    order.push_back(queue.front().bytes);
    queue.pop_front();
  }
  EXPECT_EQ(order, (std::vector<std::string>{"done", "f1", "f2"}));

  // Control frames are never dropped, no matter how many queue up.
  PushQueue controls(/*max_queued_pushes=*/1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(controls.Push("c", false, 0), 0u);
  EXPECT_EQ(controls.size(), 10u);
}

TEST(NetFrameTest, PushQueuePinsPartiallyWrittenHead) {
  PushQueue queue(/*max_queued_pushes=*/1);
  queue.Push("f0", true, 0);
  // f0's first bytes are already on the wire: it must not be dropped, so
  // the NEXT oldest frontier frame gives way instead.
  EXPECT_EQ(queue.Push("f1", true, /*head_bytes_written=*/1), 0u);
  EXPECT_EQ(queue.Push("f2", true, /*head_bytes_written=*/1), 1u);
  std::vector<std::string> order;
  while (!queue.empty()) {
    order.push_back(queue.front().bytes);
    queue.pop_front();
  }
  EXPECT_EQ(order, (std::vector<std::string>{"f0", "f2"}));
}

}  // namespace
}  // namespace net
}  // namespace moqo
