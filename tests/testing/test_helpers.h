// Copyright (c) 2026 moqo authors. MIT license.
//
// Shared fixtures for the moqo test suite: a tiny synthetic catalog and
// query shapes small enough for exhaustive cross-checking against the EXA.

#ifndef MOQO_TESTS_TESTING_TEST_HELPERS_H_
#define MOQO_TESTS_TESTING_TEST_HELPERS_H_

#include <string>

#include "catalog/catalog.h"
#include "core/optimizer.h"
#include "plan/operators.h"
#include "query/query.h"
#include "util/random.h"

namespace moqo {
namespace testing {

/// A small four-table star-ish catalog (fact + three dimensions) with
/// indexes on the keys; cardinalities are tiny so exact optimization over
/// all subsets stays in the milliseconds.
inline Catalog MakeTinyCatalog() {
  Catalog catalog;

  Table fact("fact", 10000, 64);
  {
    ColumnStats key;
    key.name = "f_d1";
    key.ndv = 100;
    key.min_value = 0;
    key.max_value = 99;
    key.histogram = Histogram::Uniform(0, 99, 8, 10000);
    fact.AddColumn(key);
    ColumnStats d2 = key;
    d2.name = "f_d2";
    fact.AddColumn(d2);
    ColumnStats d3 = key;
    d3.name = "f_d3";
    fact.AddColumn(d3);
    ColumnStats v;
    v.name = "f_value";
    v.ndv = 1000;
    v.min_value = 0;
    v.max_value = 999;
    v.histogram = Histogram::Uniform(0, 999, 8, 10000);
    fact.AddColumn(v);
  }
  fact.AddIndex("f_d1");
  catalog.AddTable(std::move(fact));

  for (int d = 1; d <= 3; ++d) {
    Table dim("dim" + std::to_string(d), 100, 32);
    ColumnStats key;
    key.name = "d" + std::to_string(d) + "_key";
    key.ndv = 100;
    key.min_value = 0;
    key.max_value = 99;
    key.histogram = Histogram::Uniform(0, 99, 8, 100);
    dim.AddColumn(key);
    dim.AddIndex(key.name);
    catalog.AddTable(std::move(dim));
  }
  return catalog;
}

/// Star query joining the fact table with the first `num_dims` dimensions.
inline Query MakeStarQuery(const Catalog* catalog, int num_dims) {
  Query query(catalog, "star" + std::to_string(num_dims));
  const int fact = query.AddTable("fact");
  for (int d = 1; d <= num_dims; ++d) {
    const int dim = query.AddTable("dim" + std::to_string(d));
    query.AddJoin(fact, "f_d" + std::to_string(d), dim,
                  "d" + std::to_string(d) + "_key");
  }
  return query;
}

/// A compact operator space for fast tests: 4 scan configs (2 types x
/// {full, 5% sample}) and 8 join configs (4 types x DOP {1, 2}).
inline OperatorRegistry::Options SmallOperatorSpace() {
  OperatorRegistry::Options options;
  options.sampling_rates = {0.05};
  options.dops = {1, 2};
  return options;
}

/// Optimizer options preconfigured with the small operator space.
inline OptimizerOptions SmallOptions(double alpha = 1.0) {
  OptimizerOptions options;
  options.alpha = alpha;
  options.operators = SmallOperatorSpace();
  return options;
}

/// Random valid cost vector with `dims` dimensions in [0, scale).
inline CostVector RandomCostVector(Xoshiro256* rng, int dims,
                                   double scale = 100.0) {
  CostVector cost(dims);
  for (int i = 0; i < dims; ++i) cost[i] = rng->NextDouble() * scale;
  return cost;
}

}  // namespace testing
}  // namespace moqo

#endif  // MOQO_TESTS_TESTING_TEST_HELPERS_H_
