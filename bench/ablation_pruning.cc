// Ablation: the guarantee-destroying pruning variant (Section 6.2).
//
// The paper warns that discarding plans which a newly inserted plan
// *approximately* dominates lets stored cost vectors drift away from the
// true Pareto frontier with every insertion. This bench quantifies that
// drift: for several queries it compares the default RTA against the
// aggressive-delete variant on (i) achieved weighted cost relative to the
// exact optimum and (ii) stored plan counts / optimization time.
//
// Expected shape: aggressive deletion is faster and stores fewer plans,
// but its relative cost can exceed the alpha_U guarantee, while the
// default RTA always stays within it.

#include <cstdio>

#include "bench/bench_config.h"
#include "harness/table_printer.h"
#include "harness/workload.h"

using namespace moqo;
using namespace moqo::bench;

int main() {
  BenchConfig config = MakeConfig(/*default_timeout_ms=*/10000);
  Catalog catalog = Catalog::TpcH(config.scale_factor);
  WorkloadGenerator generator(&catalog, config.options);

  std::printf("Ablation: default vs aggressive approximate pruning "
              "(alpha=2, SF=%g)\n\n", config.scale_factor);
  TablePrinter table({"query", "objs", "variant", "rel_cost", "guarantee_ok",
                      "pareto", "time_ms"});

  int violations = 0, cells = 0;
  for (int query : {3, 12, 10, 5}) {
    for (int l : {4, 6}) {
      for (int c = 0; c < config.cases; ++c) {
        const TestCase tc = generator.WeightedCase(query, l, 5000 + c);
        OptimizerOptions exact_options = config.options;
        const RunOutcome exact =
            RunCase(AlgorithmKind::kExa, catalog, tc, exact_options);
        if (exact.metrics.timed_out) continue;

        for (bool aggressive : {false, true}) {
          OptimizerOptions options = config.options;
          options.alpha = 2.0;
          options.aggressive_delete = aggressive;
          const RunOutcome outcome =
              RunCase(AlgorithmKind::kRta, catalog, tc, options);
          const double rel = exact.weighted_cost > 0
                                 ? outcome.weighted_cost / exact.weighted_cost
                                 : 1.0;
          const bool ok = rel <= options.alpha + 1e-9;
          if (!aggressive && !ok) ++violations;  // Must never happen.
          ++cells;
          table.AddRow({"q" + std::to_string(query), std::to_string(l),
                        aggressive ? "aggressive" : "default",
                        FormatDouble(rel, 4), ok ? "yes" : "NO",
                        FormatDouble(
                            outcome.metrics.last_complete_pareto_count, 0),
                        FormatDouble(outcome.metrics.optimization_ms, 1)});
        }
      }
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("default-RTA guarantee violations: %d (must be 0) over %d "
              "runs\n", violations, cells);
  return violations == 0 ? 0 : 1;
}
