// Reproduces Figure 5: performance of the exact algorithm (EXA) on TPC-H
// for 1, 3, 6 and 9 objectives — optimization time, allocated memory, and
// number of Pareto plans for the last completely treated table set, with
// queries ordered by maximal from-clause size. Gray markers in the paper
// (timeouts) appear here as a timeout percentage column.
//
// Expected shape (paper): 1 objective stays in the milliseconds; cost
// explodes with #objectives and #tables; the number of Pareto plans far
// exceeds Ganguly's 2^l bound (8 / 64 / 512 for 3 / 6 / 9 objectives).

#include <cstdio>

#include "bench/bench_config.h"
#include "harness/table_printer.h"
#include "harness/workload.h"

using namespace moqo;
using namespace moqo::bench;

int main() {
  const BenchConfig config = MakeConfig(/*default_timeout_ms=*/5000);
  Catalog catalog = Catalog::TpcH(config.scale_factor);
  WorkloadGenerator generator(&catalog, config.options);

  std::printf(
      "Figure 5: EXA on TPC-H (SF=%g, timeout=%lld ms, %d cases/cell)\n"
      "paper shape: 1 objective stays in milliseconds; time/memory/#Pareto\n"
      "plans explode with #objectives and #tables; 2^l bound exceeded\n\n",
      config.scale_factor,
      static_cast<long long>(config.options.timeout_ms), config.cases);

  TablePrinter table({"query", "tables", "objs", "timeout%", "time_ms",
                      "memory_KB", "pareto_plans", "considered"});

  struct Cell {
    int query;
    int num_objectives;
    std::vector<RunOutcome> outcomes;
  };
  std::vector<Cell> cells;
  for (int query : TpcHQueryOrder()) {
    for (int l : {1, 3, 6, 9}) {
      cells.push_back({query, l, {}});
    }
  }
  // Pre-generate test cases serially (the generator caches minima), then
  // run optimizations in parallel like the paper's five optimizer threads.
  std::vector<std::vector<TestCase>> case_matrix(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    for (int c = 0; c < config.cases; ++c) {
      case_matrix[i].push_back(generator.WeightedCase(
          cells[i].query, cells[i].num_objectives, 1000 + c));
    }
    cells[i].outcomes.resize(config.cases);
  }
  ParallelFor(static_cast<int>(cells.size()) * config.cases, config.threads,
              [&](int job) {
                const int cell = job / config.cases;
                const int c = job % config.cases;
                cells[cell].outcomes[c] =
                    RunCase(AlgorithmKind::kExa, catalog,
                            case_matrix[cell][c], config.options);
              });

  for (const Cell& cell : cells) {
    const CellStats stats = Aggregate(cell.outcomes, {});
    double considered = 0;
    for (const RunOutcome& o : cell.outcomes) {
      considered += static_cast<double>(o.metrics.considered_plans);
    }
    table.AddRow({"q" + std::to_string(cell.query),
                  std::to_string(TpcHQueryTableCount(cell.query)),
                  std::to_string(cell.num_objectives),
                  FormatDouble(stats.timeout_pct, 0),
                  FormatDouble(stats.mean_time_ms, 1),
                  FormatDouble(stats.mean_memory_kb, 0),
                  FormatDouble(stats.mean_pareto_plans, 1),
                  FormatDouble(considered / config.cases, 0)});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "Ganguly 2^l bounds for comparison: l=3 -> 8, l=6 -> 64, l=9 -> 512\n"
      "(the pareto_plans column exceeds these by orders of magnitude,\n"
      "matching Section 5.1's refutation of that assumption)\n");
  return 0;
}
