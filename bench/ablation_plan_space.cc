// Ablations of the plan-space switches DESIGN.md calls out:
//   (1) bushy vs left-deep plan enumeration,
//   (2) the Cartesian-product heuristic on vs off.
//
// Expected shape: left-deep optimization is faster but can miss better
// bushy tradeoffs; disabling the Cartesian heuristic inflates optimization
// time without improving (predicate-connected) TPC-H plans.

#include <cstdio>

#include "bench/bench_config.h"
#include "harness/table_printer.h"
#include "harness/workload.h"

using namespace moqo;
using namespace moqo::bench;

int main() {
  BenchConfig config = MakeConfig(/*default_timeout_ms=*/10000);
  Catalog catalog = Catalog::TpcH(config.scale_factor);
  WorkloadGenerator generator(&catalog, config.options);

  std::printf("Ablation: plan-space switches (RTA alpha=1.5, SF=%g)\n\n",
              config.scale_factor);
  TablePrinter table({"query", "objs", "variant", "time_ms", "considered",
                      "wcost_vs_default"});

  for (int query : {3, 10, 5}) {
    for (int l : {3, 6}) {
      const TestCase tc = generator.WeightedCase(query, l, 6000);
      OptimizerOptions base = config.options;
      base.alpha = 1.5;
      const RunOutcome def = RunCase(AlgorithmKind::kRta, catalog, tc, base);

      OptimizerOptions leftdeep = base;
      leftdeep.bushy = false;
      const RunOutcome ld =
          RunCase(AlgorithmKind::kRta, catalog, tc, leftdeep);

      OptimizerOptions no_heuristic = base;
      no_heuristic.cartesian_heuristic = false;
      const RunOutcome cart =
          RunCase(AlgorithmKind::kRta, catalog, tc, no_heuristic);

      auto add = [&](const char* name, const RunOutcome& o) {
        table.AddRow(
            {"q" + std::to_string(query), std::to_string(l), name,
             FormatDouble(o.metrics.optimization_ms, 1),
             std::to_string(o.metrics.considered_plans),
             FormatDouble(def.weighted_cost > 0
                              ? o.weighted_cost / def.weighted_cost
                              : 1.0,
                          4)});
      };
      add("bushy+heuristic", def);
      add("left-deep", ld);
      add("no-cartesian-heur", cart);
    }
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}
