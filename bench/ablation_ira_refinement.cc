// Ablation: the IRA precision-refinement policy (Section 7.2).
//
// Compares the paper's policy alpha(i) = alpha_U^(2^(-i/(3l-3))) against
// two alternatives on bounded-MOQO instances:
//   halving:  alpha(i) = 1 + (alpha_U - 1) * 2^(-(i-1))   (fast decrease)
//   slow:     alpha(i) = alpha_U^(1/i)                    (harmonic-ish)
// by driving DPPlanGenerator directly with each schedule and the IRA
// stopping condition. Reports iterations, total time, and the share of the
// last iteration in total time (the paper's policy keeps redundant work
// negligible: the last iteration dominates).

#include <cmath>
#include <cstdio>

#include "bench/bench_config.h"
#include "core/ira.h"
#include "harness/table_printer.h"
#include "harness/workload.h"

using namespace moqo;
using namespace moqo::bench;

namespace {

struct PolicyResult {
  int iterations = 0;
  double total_ms = 0;
  double last_ms = 0;
  double weighted_cost = 0;
  bool bounds_ok = false;
};

PolicyResult RunWithSchedule(const Catalog& catalog, const TestCase& tc,
                             const OptimizerOptions& base,
                             const std::function<double(int)>& schedule) {
  Query query = MakeTpcHQuery(&catalog, tc.query_number);
  OperatorRegistry registry(base.operators);
  CostModel model(&query, &registry, tc.objectives);
  Arena arena;
  PolicyResult result;
  StopWatch total;
  for (int i = 1; i <= 40; ++i) {
    const double alpha = std::max(schedule(i), 1.0);
    StopWatch iteration;
    arena.Reset();
    DPPlanGenerator generator(&model, &registry, &arena);
    DPOptions dp;
    dp.alpha = RTAInternalPrecision(alpha, query.num_tables());
    dp.deadline = Deadline::AfterMillis(base.timeout_ms);
    dp.quick_mode_weights = tc.weights;
    const ParetoSet& pareto = generator.Run(query, dp);
    const PlanNode* popt = pareto.SelectBest(tc.weights, tc.bounds);
    result.iterations = i;
    result.last_ms = iteration.ElapsedMillis();
    if (IRAOptimizer::StoppingConditionMet(pareto, tc.weights, tc.bounds,
                                           popt, alpha, base.alpha) ||
        alpha <= 1.0) {
      result.weighted_cost =
          popt != nullptr ? tc.weights.WeightedCost(popt->cost) : 0;
      result.bounds_ok = popt != nullptr && tc.bounds.Respects(popt->cost);
      break;
    }
  }
  result.total_ms = total.ElapsedMillis();
  return result;
}

}  // namespace

int main() {
  BenchConfig config = MakeConfig(/*default_timeout_ms=*/10000);
  config.options.alpha = 1.5;
  Catalog catalog = Catalog::TpcH(config.scale_factor);
  WorkloadGenerator generator(&catalog, config.options);

  std::printf("Ablation: IRA refinement policies (alpha_U=1.5, SF=%g)\n\n",
              config.scale_factor);
  TablePrinter table({"query", "bounds", "policy", "iters", "total_ms",
                      "last_iter_share", "wcost", "bounds_ok"});

  const double alpha_u = config.options.alpha;
  const int l = kNumObjectives;
  const std::vector<std::pair<std::string, std::function<double(int)>>>
      policies = {
          {"paper(2^-i/(3l-3))",
           [&](int i) { return IRAIterationPrecision(alpha_u, i, l); }},
          {"halving",
           [&](int i) {
             return 1.0 + (alpha_u - 1.0) * std::pow(2.0, -(i - 1));
           }},
          {"harmonic",
           [&](int i) { return std::pow(alpha_u, 1.0 / i); }},
      };

  for (int query : {12, 3, 10}) {
    for (int bounds : {3, 6}) {
      const TestCase tc = generator.BoundedCase(query, bounds, 7000);
      for (const auto& [name, schedule] : policies) {
        const PolicyResult r =
            RunWithSchedule(catalog, tc, config.options, schedule);
        table.AddRow({"q" + std::to_string(query), std::to_string(bounds),
                      name, std::to_string(r.iterations),
                      FormatDouble(r.total_ms, 1),
                      FormatDouble(r.total_ms > 0 ? r.last_ms / r.total_ms
                                                  : 1.0,
                                   2),
                      FormatDouble(r.weighted_cost, 2),
                      r.bounds_ok ? "yes" : "no"});
      }
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("paper shape: the paper's policy keeps the last iteration's\n"
              "share of total time high (little redundant work) while not\n"
              "over-refining like fast-halving schedules.\n");
  return 0;
}
