// Copyright (c) 2026 moqo authors. MIT license.
//
// Persistence bench (PR 9): quantifies — and hard-gates — what snapshot
// warm-restore buys across a service restart.
//
// Phases (MOQO_PERSIST_MODE):
//   warm     cold pass (all misses) + warm pass (all RAM hits) through a
//            persist-enabled service, then SnapshotNow(). Leaves the
//            snapshot and the measured warm p50 under MOQO_PERSIST_DIR
//            for the restore phase.
//   restore  a FRESH process boots from that directory and re-drives the
//            identical workload. Hard gates (exit 1):
//              - restored_entries > 0 (a silent cold start is a fail);
//              - the first request is a cache hit with zero optimizer
//                runs (warmth must be usable immediately, not after
//                re-optimization);
//              - restored-warm p50 <= 2x the pre-restart warm p50 (a
//                restored hit re-selects over a decoded frontier; it must
//                stay in the same latency class as a RAM hit).
//   all      both phases in one process (two service instances) — the
//            local quick check. Default.
//
// The workload is env-free deterministic (fixed queries, objective
// prefix, uniform weights): the restore process must produce byte-
// identical signatures to the warm process or every gate fails.
//
// Env knobs: MOQO_PERSIST_MODE (all), MOQO_PERSIST_DIR
// (persist_bench_state), MOQO_SF (0.01). Artifact: BENCH_persist.json.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "harness/experiment.h"
#include "harness/service_experiment.h"
#include "persist/persist_stats.h"
#include "query/tpch_queries.h"
#include "service/optimization_service.h"

namespace moqo {
namespace {

OperatorRegistry::Options BenchOperatorSpace() {
  OperatorRegistry::Options options;
  options.sampling_rates = {0.05};
  options.dops = {1, 2};
  return options;
}

std::string EnvString(const char* name, const char* default_value) {
  const char* value = std::getenv(name);
  return value == nullptr || value[0] == '\0' ? default_value : value;
}

ServiceOptions PersistOptions(const std::string& dir, bool restore) {
  ServiceOptions options;
  options.num_workers = 2;
  options.operators = BenchOperatorSpace();
  options.persist.directory = dir;
  options.persist.restore_on_start = restore;
  // Snapshots are explicit here (SnapshotNow after the warm pass), so a
  // phase's teardown cannot overwrite the state under measurement.
  options.persist.snapshot_on_shutdown = false;
  options.persist.tier_capacity_bytes = size_t{32} << 20;
  return options;
}

/// The fixed workload both processes must derive identically: mid-size
/// TPC-H joins, first-3 objective prefix, uniform weights.
std::vector<ServiceRequest> BuildRequests(const Catalog* catalog) {
  const int kQueries[] = {10, 2, 5, 7};
  constexpr int kObjectives = 3;
  std::vector<ServiceRequest> requests;
  for (int number : kQueries) {
    ServiceRequest request;
    request.spec.query =
        std::make_shared<Query>(MakeTpcHQuery(catalog, number));
    request.spec.objectives = ObjectiveSet(std::vector<Objective>(
        kAllObjectives.begin(), kAllObjectives.begin() + kObjectives));
    request.preference.weights = WeightVector::Uniform(kObjectives);
    requests.push_back(std::move(request));
  }
  return requests;
}

uint64_t OptimizerRuns(const OptimizationService& service) {
  uint64_t runs = 0;
  for (const HistogramSnapshot& lat : service.Stats().latency_by_algorithm) {
    runs += lat.count;
  }
  return runs;
}

std::string WarmP50Path(const std::string& dir) {
  return dir + "/warm_p50.txt";
}

/// Cold + warm passes, snapshot, and the warm-p50 handoff file.
/// Returns the warm p50 (< 0 on failure).
double RunWarmPhase(const Catalog* catalog, const std::string& dir,
                    bench::Json* doc) {
  OptimizationService service(PersistOptions(dir, /*restore=*/false));
  const std::vector<ServiceRequest> requests = BuildRequests(catalog);

  const ServiceRunStats cold = DriveService(&service, requests);
  if (cold.completed + cold.quick != cold.total || cold.null_plans != 0) {
    std::printf("ERROR: cold pass failed (%d/%d completed)\n",
                cold.completed, cold.total);
    return -1;
  }
  const ServiceRunStats warm = DriveService(&service, requests);
  if (warm.cache_hits != warm.total) {
    std::printf("ERROR: warm pass missed the cache (%d/%d hits)\n",
                warm.cache_hits, warm.total);
    return -1;
  }
  if (!service.SnapshotNow()) {
    std::printf("ERROR: SnapshotNow failed\n");
    return -1;
  }
  const persist::PersistStatsSnapshot persisted = service.PersistStats();
  std::printf("warm: p50=%.3fms  snapshot: %llu records, %llu bytes\n",
              warm.PercentileMs(50),
              static_cast<unsigned long long>(persisted.snapshot_records),
              static_cast<unsigned long long>(persisted.snapshot_bytes));

  const double warm_p50 = warm.PercentileMs(50);
  FILE* handoff = std::fopen(WarmP50Path(dir).c_str(), "w");
  if (handoff == nullptr) {
    std::printf("ERROR: cannot write %s\n", WarmP50Path(dir).c_str());
    return -1;
  }
  std::fprintf(handoff, "%.17g\n", warm_p50);
  std::fclose(handoff);

  bench::Json phase = bench::Json::Object();
  phase.Set("requests", cold.total)
      .Set("cold_p50_ms", cold.PercentileMs(50))
      .Set("warm_p50_ms", warm_p50)
      .Set("snapshot_records",
           static_cast<long long>(persisted.snapshot_records))
      .Set("snapshot_bytes",
           static_cast<long long>(persisted.snapshot_bytes));
  doc->Set("warm_phase", std::move(phase));
  return warm_p50;
}

/// Boots from the snapshot and enforces the restore gates. Returns 0/1.
int RunRestorePhase(const Catalog* catalog, const std::string& dir,
                    double warm_p50, bench::Json* doc) {
  OptimizationService service(PersistOptions(dir, /*restore=*/true));
  const persist::PersistStatsSnapshot persisted = service.PersistStats();
  std::printf("restore: %llu plan + %llu memo entries, %llu bytes\n",
              static_cast<unsigned long long>(persisted.restored_plan_entries),
              static_cast<unsigned long long>(persisted.restored_memo_entries),
              static_cast<unsigned long long>(persisted.restore_bytes));
  if (persisted.restored_entries() == 0) {
    std::printf("ERROR: restore loaded zero entries\n");
    return 1;
  }

  const std::vector<ServiceRequest> requests = BuildRequests(catalog);
  const ServiceResponse first = service.SubmitAndWait(requests[0]);
  if (!first.cache_hit() || OptimizerRuns(service) != 0) {
    std::printf("ERROR: first post-restart request was not served from "
                "the restored cache (outcome=%d, optimizer_runs=%llu)\n",
                static_cast<int>(first.cache),
                static_cast<unsigned long long>(OptimizerRuns(service)));
    return 1;
  }
  const ServiceRunStats restored = DriveService(&service, requests);
  if (restored.cache_hits != restored.total) {
    std::printf("ERROR: restored pass missed the cache (%d/%d hits)\n",
                restored.cache_hits, restored.total);
    return 1;
  }
  const double restored_p50 = restored.PercentileMs(50);
  const double ratio = warm_p50 > 0 ? restored_p50 / warm_p50 : 0;
  std::printf("restored-warm: p50=%.3fms (%.2fx pre-restart warm p50 "
              "%.3fms)\n",
              restored_p50, ratio, warm_p50);
  if (warm_p50 > 0 && restored_p50 > 2.0 * warm_p50) {
    std::printf("ERROR: restored-warm p50 exceeds 2x the pre-restart warm "
                "p50\n");
    return 1;
  }

  bench::Json phase = bench::Json::Object();
  phase.Set("restored_plan_entries",
            static_cast<long long>(persisted.restored_plan_entries))
      .Set("restored_memo_entries",
           static_cast<long long>(persisted.restored_memo_entries))
      .Set("restore_bytes", static_cast<long long>(persisted.restore_bytes))
      .Set("first_request_hit", true)
      .Set("restored_p50_ms", restored_p50)
      .Set("warm_p50_ms", warm_p50)
      .Set("p50_ratio_vs_warm", ratio);
  doc->Set("restore_phase", std::move(phase));
  return 0;
}

int Run() {
  const std::string mode = EnvString("MOQO_PERSIST_MODE", "all");
  const std::string dir =
      EnvString("MOQO_PERSIST_DIR", "persist_bench_state");
  const double sf = EnvDouble("MOQO_SF", 0.01);
  Catalog catalog = Catalog::TpcH(sf);

  std::printf("== persistence bench (mode=%s, dir=%s) ==\n", mode.c_str(),
              dir.c_str());
  bench::Json doc = bench::Json::Object();
  doc.Set("bench", "persist").Set("mode", mode.c_str());

  double warm_p50 = -1;
  if (mode == "warm" || mode == "all") {
    warm_p50 = RunWarmPhase(&catalog, dir, &doc);
    if (warm_p50 < 0) return 1;
  }
  int status = 0;
  if (mode == "restore" || mode == "all") {
    if (warm_p50 < 0) {  // Separate-process restore: read the handoff.
      FILE* handoff = std::fopen(WarmP50Path(dir).c_str(), "r");
      if (handoff == nullptr ||
          std::fscanf(handoff, "%lg", &warm_p50) != 1) {
        std::printf("ERROR: no warm-phase handoff at %s — run "
                    "MOQO_PERSIST_MODE=warm first\n",
                    WarmP50Path(dir).c_str());
        if (handoff != nullptr) std::fclose(handoff);
        return 1;
      }
      std::fclose(handoff);
    }
    status = RunRestorePhase(&catalog, dir, warm_p50, &doc);
  }
  if (status != 0) return status;

  const std::string path = "BENCH_persist.json";
  if (!bench::WriteJsonFile(path, doc)) {
    std::printf("ERROR: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace moqo

int main() { return moqo::Run(); }
