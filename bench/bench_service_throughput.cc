// Copyright (c) 2026 moqo authors. MIT license.
//
// Service throughput bench: quantifies what the serving layer adds on top
// of the single-shot optimizers.
//
//   1. Cache amortization. A Section-8 style workload over TPC-H join
//      graphs is driven through the service twice; the second (warm) pass
//      resolves entirely from the plan-signature cache. Reported: cold vs
//      warm mean latency and the speedup factor (expected >= 10x — a cache
//      hit skips the whole Pareto-frontier DP).
//   2. Weight sweep. The same queries with ROTATING preference weights:
//      under the PR-2 weight-free signatures every weight variation after
//      the first request per query is a frontier hit — O(|frontier|)
//      SelectPlan, no optimizer run. Reported: frontier-hit rate and the
//      speedup of a frontier hit over a cold optimization.
//   3. Overlapping queries. A sliding-window chain workload: every request
//      is a DISTINCT query (distinct whole-query signature, so the plan
//      cache never hits), but consecutive queries share most of their join
//      subgraph. With the cross-query subplan memo enabled, each query
//      seals the shared table sets from the memo instead of rebuilding
//      them. Reported: memo hit rate (must exceed 50%) and the p50 latency
//      with the memo on vs off (on must be lower).
//   4. Anytime frontier sessions. The same shared-subgraph workload
//      driven through OpenFrontier with a multi-rung alpha ladder: each
//      session publishes a quick-mode frontier at open, then refines
//      toward the target. Reported: time-to-first-frontier, per-rung p50
//      latencies, and the SubplanMemo hit rate across ladder steps
//      (sessions over overlapping queries reuse each other's same-alpha
//      sub-frontiers; must be > 0). Monotone alpha per session is a hard
//      check.
//   5. Worker scaling. The same workload, cache disabled, for increasing
//      worker counts. On a multi-core host throughput rises with workers
//      until the core count; on a single core it stays flat.
//
// Env knobs (see bench_config.h conventions):
//   MOQO_SF          TPC-H scale factor        (default 0.01)
//   MOQO_CASES       cases per query           (default 2)
//   MOQO_OBJECTIVES  objectives per case       (default 6)
//   MOQO_SWEEPS      weight draws per query    (default 16)
//   MOQO_MAX_WORKERS scaling sweep upper bound (default 8)
//   MOQO_OVERLAP_TABLES      tables per overlapping query    (default 10)
//   MOQO_OVERLAP_QUERIES     sliding-window query count      (default 8)
//   MOQO_OVERLAP_OBJECTIVES  objectives in the overlap phase (default 3)
//   MOQO_SESSION_QUERIES     sessions in the anytime phase   (default 6)
//   MOQO_SESSION_TABLES      tables per session query        (default 9)
//   MOQO_SESSION_STEPS       ladder rungs per session        (default 3)

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_json.h"
#include "harness/experiment.h"
#include "harness/service_experiment.h"
#include "obs/histogram.h"
#include "harness/workload.h"
#include "query/tpch_queries.h"
#include "service/optimization_service.h"
#include "util/random.h"

namespace moqo {
namespace {

OperatorRegistry::Options BenchOperatorSpace() {
  OperatorRegistry::Options options;
  options.sampling_rates = {0.05};
  options.dops = {1, 2};
  return options;
}

/// Drives the overlap workload sequentially, returning per-request
/// latencies (sequential so each latency cleanly attributes to one DP run).
std::vector<double> DriveOverlap(OptimizationService* service,
                                 const std::vector<ServiceRequest>& requests,
                                 bool* ok) {
  std::vector<double> latencies;
  latencies.reserve(requests.size());
  for (const ServiceRequest& request : requests) {
    const ServiceResponse response = service->SubmitAndWait(request);
    if (response.status != ResponseStatus::kCompleted ||
        response.result == nullptr || response.result->plan == nullptr ||
        response.cache != CacheOutcome::kMiss) {
      *ok = false;
      return latencies;
    }
    latencies.push_back(response.service_ms);
  }
  return latencies;
}

/// One drive's aggregate as a JSON object for the BENCH_service.json
/// artifact.
bench::Json RunJson(const ServiceRunStats& stats) {
  bench::Json json = bench::Json::Object();
  json.Set("requests", stats.total)
      .Set("ops_per_s", stats.Throughput())
      .Set("wall_ms", stats.wall_ms)
      .Set("mean_ms", stats.mean_service_ms)
      .Set("p50_ms", stats.PercentileMs(50))
      .Set("p95_ms", stats.PercentileMs(95))
      .Set("p99_ms", stats.PercentileMs(99))
      .Set("max_ms", stats.max_service_ms)
      .Set("cache_hits", stats.cache_hits)
      .Set("mean_frontier", stats.mean_frontier);
  return json;
}

int Run() {
  const double sf = EnvDouble("MOQO_SF", 0.01);
  const int cases = EnvInt("MOQO_CASES", 2);
  const int objectives =
      std::clamp(EnvInt("MOQO_OBJECTIVES", 6), 1, kNumObjectives);
  const int max_workers = EnvInt("MOQO_MAX_WORKERS", 8);

  Catalog catalog = Catalog::TpcH(sf);
  OptimizerOptions gen_options;
  gen_options.operators = BenchOperatorSpace();
  WorkloadGenerator generator(&catalog, gen_options);

  ServiceWorkloadOptions workload_options;
  // Mid-to-large queries (4-6 tables): large enough that optimization
  // dominates dispatch, small enough that the cold pass stays in seconds.
  workload_options.query_numbers = {10, 21, 2, 5, 7};
  workload_options.cases_per_query = cases;
  workload_options.num_objectives = objectives;
  const std::vector<ServiceRequest> requests =
      BuildServiceWorkload(&catalog, &generator, workload_options);

  std::printf("== service throughput bench ==\n");
  std::printf("workload: %zu requests (%zu TPC-H queries x %d cases, "
              "%d objectives)\n\n",
              requests.size(), workload_options.query_numbers.size(), cases,
              objectives);

  bench::Json doc = bench::Json::Object();
  doc.Set("bench", "service_throughput")
      .Set("requests", static_cast<int>(requests.size()))
      .Set("objectives", objectives);

  // Phase 1: cache amortization.
  {
    ServiceOptions options;
    options.num_workers = 2;
    options.operators = BenchOperatorSpace();
    OptimizationService service(options);

    const ServiceRunStats cold = DriveService(&service, requests);
    const ServiceRunStats warm = DriveService(&service, requests);

    std::printf("-- cache amortization (2 workers) --\n");
    std::printf("cold: %s\n", cold.ToString().c_str());
    std::printf("warm: %s\n", warm.ToString().c_str());
    const double speedup = warm.mean_service_ms > 0
                               ? cold.mean_service_ms / warm.mean_service_ms
                               : 0;
    std::printf("cached speedup: %.1fx (mean %.3f ms -> %.4f ms)\n",
                speedup, cold.mean_service_ms, warm.mean_service_ms);
    std::printf("stats: %s\n", service.Stats().ToString().c_str());
    bench::Json phase = bench::Json::Object();
    phase.Set("cold", RunJson(cold))
        .Set("warm", RunJson(warm))
        .Set("cached_speedup", speedup)
        .Set("cache_bytes", service.Stats().cache_bytes)
        .Set("mean_cached_frontier", service.Stats().MeanCachedFrontier());
    doc.Set("cache_amortization", std::move(phase));
    if (warm.cache_hits != warm.total) {
      std::printf("ERROR: warm pass expected all cache hits\n");
      return 1;
    }
    if (speedup < 10.0) {
      std::printf("WARNING: cached speedup below 10x\n");
    }
  }

  // Phase 2: weight sweep — same specs, rotating preferences. With
  // weight-free signatures, each query optimizes once and every further
  // weight draw is a frontier hit.
  {
    const int sweeps = EnvInt("MOQO_SWEEPS", 16);
    ServiceOptions options;
    options.num_workers = 2;
    options.operators = BenchOperatorSpace();
    OptimizationService service(options);

    std::vector<ServiceRequest> sweep_requests;
    Xoshiro256 rng(7);
    for (int query_number : workload_options.query_numbers) {
      auto query = std::make_shared<Query>(
          MakeTpcHQuery(&catalog, query_number));
      std::vector<Objective> objective_pick(
          kAllObjectives.begin(), kAllObjectives.begin() + objectives);
      for (int s = 0; s < sweeps; ++s) {
        ServiceRequest request;
        request.spec.query = query;
        request.spec.objectives = ObjectiveSet(objective_pick);
        WeightVector weights(objectives);
        for (int i = 0; i < objectives; ++i) {
          weights[i] = rng.NextDouble();
        }
        request.preference.weights = weights;
        sweep_requests.push_back(std::move(request));
      }
    }

    // Sequential drive so each request's latency attributes cleanly to
    // its outcome (miss = full DP, frontier hit = SelectPlan only).
    double miss_ms = 0, hit_ms = 0;
    int misses = 0, frontier_hits = 0, other = 0;
    for (const ServiceRequest& request : sweep_requests) {
      const ServiceResponse response = service.SubmitAndWait(request);
      if (response.status == ResponseStatus::kRejected ||
          response.result == nullptr || response.result->plan == nullptr) {
        std::printf("ERROR: weight-sweep request failed\n");
        return 1;
      }
      switch (response.cache) {
        case CacheOutcome::kMiss:
          ++misses;
          miss_ms += response.service_ms;
          break;
        case CacheOutcome::kFrontierHit:
          ++frontier_hits;
          hit_ms += response.service_ms;
          break;
        default:  // Exact or coalesced: identical weights can't recur here.
          ++other;
          break;
      }
    }

    const int total = static_cast<int>(sweep_requests.size());
    const int queries =
        static_cast<int>(workload_options.query_numbers.size());
    const double cold_mean = misses == 0 ? 0 : miss_ms / misses;
    const double hit_mean = frontier_hits == 0 ? 0 : hit_ms / frontier_hits;
    std::printf("\n-- weight sweep (%d weight draws per query) --\n", sweeps);
    std::printf("requests=%d optimizer_runs=%d frontier_hits=%d other=%d\n",
                total, misses, frontier_hits, other);
    std::printf("frontier-hit rate: %.3f\n",
                total == 0 ? 0 : static_cast<double>(frontier_hits) / total);
    std::printf("weight-change speedup: %.1fx (cold %.3f ms -> hit %.4f ms)\n",
                hit_mean > 0 ? cold_mean / hit_mean : 0, cold_mean, hit_mean);
    std::printf("stats: %s\n", service.Stats().ToString().c_str());
    bench::Json phase = bench::Json::Object();
    phase.Set("requests", total)
        .Set("optimizer_runs", misses)
        .Set("frontier_hits", frontier_hits)
        .Set("frontier_hit_rate",
             total == 0 ? 0.0 : static_cast<double>(frontier_hits) / total)
        .Set("cold_mean_ms", cold_mean)
        .Set("hit_mean_ms", hit_mean)
        .Set("weight_change_speedup",
             hit_mean > 0 ? cold_mean / hit_mean : 0.0);
    doc.Set("weight_sweep", std::move(phase));
    if (misses != queries || frontier_hits != total - queries) {
      std::printf("ERROR: every weight draw after the first per query must "
                  "be a frontier hit (expected %d runs, %d hits)\n",
                  queries, total - queries);
      return 1;
    }
  }

  // Phase 3: overlapping queries — the cross-query subplan memo's home
  // turf. Distinct queries (zero plan-cache hits) sharing join subgraphs;
  // the memo turns the shared sub-frontiers into table-set-level hits.
  {
    const int overlap_tables = EnvInt("MOQO_OVERLAP_TABLES", 10);
    const int overlap_queries = EnvInt("MOQO_OVERLAP_QUERIES", 8);
    const int overlap_objectives =
        std::clamp(EnvInt("MOQO_OVERLAP_OBJECTIVES", 3), 1, kNumObjectives);
    SharedSubgraphOptions overlap_workload;
    overlap_workload.num_queries = overlap_queries;
    overlap_workload.tables_per_query = overlap_tables;
    overlap_workload.num_objectives = overlap_objectives;
    Catalog overlap_catalog = MakeSharedSubgraphCatalog(overlap_workload);
    const std::vector<ServiceRequest> overlap_requests =
        BuildSharedSubgraphWorkload(&overlap_catalog, overlap_workload);

    // Serial DP so each request's latency measures exactly one engine's
    // work; one worker so the memo warms in submission order.
    ServiceOptions base;
    base.num_workers = 1;
    base.operators = BenchOperatorSpace();
    base.policy.max_parallelism = 1;

    ServiceOptions memo_off = base;
    memo_off.enable_subplan_memo = false;
    bool ok = true;
    std::vector<double> cold_ms, warm_ms;
    ServiceStatsSnapshot memo_stats;
    {
      OptimizationService service(memo_off);
      cold_ms = DriveOverlap(&service, overlap_requests, &ok);
    }
    if (ok) {
      OptimizationService service(base);
      warm_ms = DriveOverlap(&service, overlap_requests, &ok);
      memo_stats = service.Stats();
    }
    if (!ok) {
      std::printf("ERROR: overlapping-query request failed\n");
      return 1;
    }

    const double cold_p50 = SnapshotOfSamples(cold_ms).PercentileMs(50);
    const double warm_p50 = SnapshotOfSamples(warm_ms).PercentileMs(50);
    const double hit_rate = memo_stats.MemoHitRate();
    std::printf("\n-- overlapping queries (%d windows x %d tables, "
                "%d objectives) --\n",
                overlap_queries, overlap_tables, overlap_objectives);
    std::printf("memo: hits=%llu misses=%llu hit_rate=%.3f entries=%zu "
                "bytes=%zu\n",
                static_cast<unsigned long long>(memo_stats.memo_hits),
                static_cast<unsigned long long>(memo_stats.memo_misses),
                hit_rate, memo_stats.memo_entries, memo_stats.memo_bytes);
    std::printf("p50: memo-off %.2f ms -> memo-on %.2f ms (%.2fx)\n",
                cold_p50, warm_p50,
                warm_p50 > 0 ? cold_p50 / warm_p50 : 0);
    bench::Json phase = bench::Json::Object();
    phase.Set("queries", overlap_queries)
        .Set("tables_per_query", overlap_tables)
        .Set("objectives", overlap_objectives)
        .Set("memo_hits", static_cast<long long>(memo_stats.memo_hits))
        .Set("memo_misses", static_cast<long long>(memo_stats.memo_misses))
        .Set("memo_hit_rate", hit_rate)
        .Set("memo_entries", memo_stats.memo_entries)
        .Set("memo_bytes", memo_stats.memo_bytes)
        .Set("memo_admission_rejects",
             static_cast<long long>(memo_stats.memo_admission_rejects))
        .Set("memo_off_p50_ms", cold_p50)
        .Set("memo_on_p50_ms", warm_p50)
        .Set("p50_speedup", warm_p50 > 0 ? cold_p50 / warm_p50 : 0.0);
    doc.Set("overlapping_memo", std::move(phase));
    if (hit_rate <= 0.5) {
      std::printf("ERROR: memo hit rate %.3f below the 0.5 target on an "
                  "overlapping workload\n",
                  hit_rate);
      return 1;
    }
    // The hit-rate check above is deterministic; this one is wall-clock.
    // On dedicated hardware memo-on wins ~2x, but CI smoke runs on noisy
    // shared runners with single-digit sample counts, so only a *clear*
    // regression (25% slower) fails hard — a mere non-win warns.
    if (warm_p50 > cold_p50 * 1.25) {
      std::printf("ERROR: memo-on p50 (%.2f ms) clearly above memo-off p50 "
                  "(%.2f ms)\n",
                  warm_p50, cold_p50);
      return 1;
    }
    if (warm_p50 >= cold_p50) {
      std::printf("WARNING: memo-on p50 (%.2f ms) not below memo-off p50 "
                  "(%.2f ms) this run\n",
                  warm_p50, cold_p50);
    }
  }

  // Phase 4: anytime frontier sessions — the PR-5 serving shape. Each
  // session opens with a quick-mode frontier, refines over an alpha
  // ladder, and publishes every rung; overlapping sessions reuse each
  // other's same-alpha table-set frontiers through the SubplanMemo, so
  // ladder steps get cheaper as the stream progresses.
  {
    const int session_queries = EnvInt("MOQO_SESSION_QUERIES", 6);
    const int session_tables = EnvInt("MOQO_SESSION_TABLES", 9);
    const int session_steps = std::max(EnvInt("MOQO_SESSION_STEPS", 3), 1);
    SharedSubgraphOptions session_workload;
    session_workload.num_queries = session_queries;
    session_workload.tables_per_query = session_tables;
    session_workload.num_objectives = 3;
    Catalog session_catalog = MakeSharedSubgraphCatalog(session_workload);
    std::vector<ProblemSpec> specs =
        BuildSharedSubgraphSpecs(&session_catalog, session_workload);
    for (ProblemSpec& spec : specs) {
      spec.algorithm = AlgorithmKind::kRta;
      spec.alpha = 1.25;
      spec.parallelism = 1;  // Serial DP: latencies attribute cleanly.
    }

    ServiceOptions options;
    options.num_workers = 1;  // The memo warms in submission order.
    options.operators = BenchOperatorSpace();
    options.policy.max_parallelism = 1;
    // This phase doubles as the tracing exemplar: the recorded spans
    // (request -> rung -> DP level -> memo probe) become the
    // TRACE_service.json artifact CI smoke-validates.
    options.trace.enabled = true;
    OptimizationService service(options);

    SessionOptions session_options;
    session_options.alpha_start = 2.5;
    session_options.max_steps = session_steps;

    bool ok = true;
    std::vector<double> first_frontier_ms;       // Open -> first plan.
    std::vector<double> target_ms;               // Open -> target alpha.
    std::vector<std::vector<double>> step_ms;    // [rung][session].
    for (const ProblemSpec& spec : specs) {
      StopWatch watch;
      auto session = service.OpenFrontier(spec, session_options);
      // Anytime contract: a valid plan exists when OpenFrontier returns.
      if (session->BestFrontier() == nullptr ||
          session->Select(Preference{}).selection.plan == nullptr) {
        std::printf("ERROR: session returned without a first frontier\n");
        ok = false;
        break;
      }
      first_frontier_ms.push_back(watch.ElapsedMillis());
      if (!session->AwaitTarget()) {
        std::printf("ERROR: session failed to reach its target alpha\n");
        ok = false;
        break;
      }
      target_ms.push_back(watch.ElapsedMillis());
      const std::vector<RefinedFrontier> history = session->History();
      int rung = 0;
      for (size_t i = 0; i < history.size(); ++i) {
        if (i > 0 && history[i].alpha >= history[i - 1].alpha) {
          std::printf("ERROR: published alpha did not decrease at step "
                      "%zu\n", i);
          ok = false;
        }
        if (history[i].from_cache) continue;  // Seeded, not a rung.
        if (std::isinf(history[i].alpha)) continue;  // Quick prelude.
        if (static_cast<size_t>(rung) >= step_ms.size()) {
          step_ms.emplace_back();
        }
        step_ms[rung++].push_back(history[i].step_ms);
      }
      session->Cancel();
    }
    if (!ok) return 1;

    const ServiceStatsSnapshot stats = service.Stats();
    const double memo_hit_rate = stats.MemoHitRate();
    std::printf("\n-- anytime sessions (%d windows x %d tables, ladder "
                "2.5 -> 1.25 in %d steps) --\n",
                session_queries, session_tables, session_steps);
    // Open-side wall clocks (measured here) and the service's own
    // first-frontier histogram report the same quantity; the JSON carries
    // both so a drift between them is visible in the artifact.
    const HistogramSnapshot first_frontier =
        SnapshotOfSamples(first_frontier_ms);
    const HistogramSnapshot target = SnapshotOfSamples(target_ms);
    std::printf("first frontier: p50 %.2f ms (service-side p50 %.2f "
                "p95 %.2f p99 %.2f); target: p50 %.2f ms\n",
                first_frontier.PercentileMs(50),
                stats.first_frontier_latency.PercentileMs(50),
                stats.first_frontier_latency.PercentileMs(95),
                stats.first_frontier_latency.PercentileMs(99),
                target.PercentileMs(50));
    bench::Json steps = bench::Json::Array();
    for (size_t rung = 0; rung < step_ms.size(); ++rung) {
      const double p50 = SnapshotOfSamples(step_ms[rung]).PercentileMs(50);
      std::printf("rung %zu: p50 %.2f ms over %zu sessions\n", rung, p50,
                  step_ms[rung].size());
      bench::Json row = bench::Json::Object();
      row.Set("rung", static_cast<int>(rung))
          .Set("sessions", static_cast<int>(step_ms[rung].size()))
          .Set("p50_ms", p50);
      steps.Push(std::move(row));
    }
    std::printf("memo across ladder steps: hits=%llu misses=%llu "
                "hit_rate=%.3f; refinement_steps=%llu\n",
                static_cast<unsigned long long>(stats.memo_hits),
                static_cast<unsigned long long>(stats.memo_misses),
                memo_hit_rate,
                static_cast<unsigned long long>(stats.refinement_steps));
    bench::Json phase = bench::Json::Object();
    phase.Set("sessions", session_queries)
        .Set("tables_per_query", session_tables)
        .Set("ladder_steps", session_steps)
        .Set("first_frontier_p50_ms", first_frontier.PercentileMs(50))
        .Set("first_frontier_service_p50_ms",
             stats.first_frontier_latency.PercentileMs(50))
        .Set("first_frontier_service_p95_ms",
             stats.first_frontier_latency.PercentileMs(95))
        .Set("first_frontier_service_p99_ms",
             stats.first_frontier_latency.PercentileMs(99))
        .Set("step_latency_p50_ms", stats.step_latency.PercentileMs(50))
        .Set("step_latency_p99_ms", stats.step_latency.PercentileMs(99))
        .Set("target_p50_ms", target.PercentileMs(50))
        .Set("per_step_p50", std::move(steps))
        .Set("memo_hits", static_cast<long long>(stats.memo_hits))
        .Set("memo_hit_rate", memo_hit_rate)
        .Set("refinement_steps",
             static_cast<long long>(stats.refinement_steps))
        .Set("sessions_opened",
             static_cast<long long>(stats.sessions_opened));
    doc.Set("anytime_sessions", std::move(phase));
    if (stats.memo_hits == 0) {
      std::printf("ERROR: ladder steps never reused the subplan memo\n");
      return 1;
    }

    // Dump the phase's spans as a Perfetto-loadable Chrome trace; an empty
    // trace means the instrumentation fell out of the request path.
    const std::string trace_path = "TRACE_service.json";
    if (!service.tracer()->WriteChromeTrace(trace_path)) {
      std::printf("ERROR: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    const uint64_t trace_events = service.tracer()->recorded_events();
    std::printf("trace: %llu span events -> %s (dropped=%llu)\n",
                static_cast<unsigned long long>(trace_events),
                trace_path.c_str(),
                static_cast<unsigned long long>(
                    service.tracer()->dropped_events()));
    if (trace_events == 0) {
      std::printf("ERROR: tracing was enabled but recorded no events\n");
      return 1;
    }
    doc.Set("trace_file", trace_path.c_str())
        .Set("trace_events", static_cast<long long>(trace_events));
  }

  // Phase 5: worker scaling (cache off: every request runs the DP).
  std::printf("\n-- worker scaling (cache disabled) --\n");
  std::printf("%8s %12s %12s %12s %9s\n", "workers", "wall_ms", "rps",
              "mean_ms", "speedup");
  bench::Json scaling = bench::Json::Array();
  double base_wall = 0;
  for (int workers = 1; workers <= max_workers; workers *= 2) {
    ServiceOptions options;
    options.num_workers = workers;
    options.enable_cache = false;
    options.operators = BenchOperatorSpace();
    OptimizationService service(options);
    const ServiceRunStats stats = DriveService(&service, requests);
    if (workers == 1) base_wall = stats.wall_ms;
    const double speedup =
        stats.wall_ms > 0 ? base_wall / stats.wall_ms : 0;
    std::printf("%8d %12.1f %12.2f %12.3f %8.2fx\n", workers, stats.wall_ms,
                stats.Throughput(), stats.mean_service_ms, speedup);
    bench::Json row = RunJson(stats);
    row.Set("workers", workers).Set("speedup_vs_1_worker", speedup);
    scaling.Push(std::move(row));
    if (stats.null_plans != 0 || stats.rejected != 0) {
      std::printf("ERROR: unexpected nulls/rejects at %d workers\n",
                  workers);
      return 1;
    }
  }
  doc.Set("worker_scaling", std::move(scaling));

  const std::string path = "BENCH_service.json";
  if (!bench::WriteJsonFile(path, doc)) {
    std::printf("ERROR: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace moqo

int main() { return moqo::Run(); }
