// Copyright (c) 2026 moqo authors. MIT license.
//
// Service throughput bench: quantifies what the serving layer adds on top
// of the single-shot optimizers.
//
//   1. Cache amortization. A Section-8 style workload over TPC-H join
//      graphs is driven through the service twice; the second (warm) pass
//      resolves entirely from the plan-signature cache. Reported: cold vs
//      warm mean latency and the speedup factor (expected >= 10x — a cache
//      hit skips the whole Pareto-frontier DP).
//   2. Weight sweep. The same queries with ROTATING preference weights:
//      under the PR-2 weight-free signatures every weight variation after
//      the first request per query is a frontier hit — O(|frontier|)
//      SelectPlan, no optimizer run. Reported: frontier-hit rate and the
//      speedup of a frontier hit over a cold optimization.
//   3. Worker scaling. The same workload, cache disabled, for increasing
//      worker counts. On a multi-core host throughput rises with workers
//      until the core count; on a single core it stays flat.
//
// Env knobs (see bench_config.h conventions):
//   MOQO_SF          TPC-H scale factor        (default 0.01)
//   MOQO_CASES       cases per query           (default 2)
//   MOQO_OBJECTIVES  objectives per case       (default 6)
//   MOQO_SWEEPS      weight draws per query    (default 16)
//   MOQO_MAX_WORKERS scaling sweep upper bound (default 8)

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_json.h"
#include "harness/experiment.h"
#include "harness/service_experiment.h"
#include "query/tpch_queries.h"
#include "service/optimization_service.h"
#include "util/random.h"

namespace moqo {
namespace {

OperatorRegistry::Options BenchOperatorSpace() {
  OperatorRegistry::Options options;
  options.sampling_rates = {0.05};
  options.dops = {1, 2};
  return options;
}

/// One drive's aggregate as a JSON object for the BENCH_service.json
/// artifact.
bench::Json RunJson(const ServiceRunStats& stats) {
  bench::Json json = bench::Json::Object();
  json.Set("requests", stats.total)
      .Set("ops_per_s", stats.Throughput())
      .Set("wall_ms", stats.wall_ms)
      .Set("mean_ms", stats.mean_service_ms)
      .Set("p50_ms", stats.PercentileMs(50))
      .Set("p99_ms", stats.PercentileMs(99))
      .Set("max_ms", stats.max_service_ms)
      .Set("cache_hits", stats.cache_hits)
      .Set("mean_frontier", stats.mean_frontier);
  return json;
}

int Run() {
  const double sf = EnvDouble("MOQO_SF", 0.01);
  const int cases = EnvInt("MOQO_CASES", 2);
  const int objectives =
      std::clamp(EnvInt("MOQO_OBJECTIVES", 6), 1, kNumObjectives);
  const int max_workers = EnvInt("MOQO_MAX_WORKERS", 8);

  Catalog catalog = Catalog::TpcH(sf);
  OptimizerOptions gen_options;
  gen_options.operators = BenchOperatorSpace();
  WorkloadGenerator generator(&catalog, gen_options);

  ServiceWorkloadOptions workload_options;
  // Mid-to-large queries (4-6 tables): large enough that optimization
  // dominates dispatch, small enough that the cold pass stays in seconds.
  workload_options.query_numbers = {10, 21, 2, 5, 7};
  workload_options.cases_per_query = cases;
  workload_options.num_objectives = objectives;
  const std::vector<ServiceRequest> requests =
      BuildServiceWorkload(&catalog, &generator, workload_options);

  std::printf("== service throughput bench ==\n");
  std::printf("workload: %zu requests (%zu TPC-H queries x %d cases, "
              "%d objectives)\n\n",
              requests.size(), workload_options.query_numbers.size(), cases,
              objectives);

  bench::Json doc = bench::Json::Object();
  doc.Set("bench", "service_throughput")
      .Set("requests", static_cast<int>(requests.size()))
      .Set("objectives", objectives);

  // Phase 1: cache amortization.
  {
    ServiceOptions options;
    options.num_workers = 2;
    options.operators = BenchOperatorSpace();
    OptimizationService service(options);

    const ServiceRunStats cold = DriveService(&service, requests);
    const ServiceRunStats warm = DriveService(&service, requests);

    std::printf("-- cache amortization (2 workers) --\n");
    std::printf("cold: %s\n", cold.ToString().c_str());
    std::printf("warm: %s\n", warm.ToString().c_str());
    const double speedup = warm.mean_service_ms > 0
                               ? cold.mean_service_ms / warm.mean_service_ms
                               : 0;
    std::printf("cached speedup: %.1fx (mean %.3f ms -> %.4f ms)\n",
                speedup, cold.mean_service_ms, warm.mean_service_ms);
    std::printf("stats: %s\n", service.Stats().ToString().c_str());
    bench::Json phase = bench::Json::Object();
    phase.Set("cold", RunJson(cold))
        .Set("warm", RunJson(warm))
        .Set("cached_speedup", speedup)
        .Set("cache_bytes", service.Stats().cache_bytes)
        .Set("mean_cached_frontier", service.Stats().MeanCachedFrontier());
    doc.Set("cache_amortization", std::move(phase));
    if (warm.cache_hits != warm.total) {
      std::printf("ERROR: warm pass expected all cache hits\n");
      return 1;
    }
    if (speedup < 10.0) {
      std::printf("WARNING: cached speedup below 10x\n");
    }
  }

  // Phase 2: weight sweep — same specs, rotating preferences. With
  // weight-free signatures, each query optimizes once and every further
  // weight draw is a frontier hit.
  {
    const int sweeps = EnvInt("MOQO_SWEEPS", 16);
    ServiceOptions options;
    options.num_workers = 2;
    options.operators = BenchOperatorSpace();
    OptimizationService service(options);

    std::vector<ServiceRequest> sweep_requests;
    Xoshiro256 rng(7);
    for (int query_number : workload_options.query_numbers) {
      auto query = std::make_shared<Query>(
          MakeTpcHQuery(&catalog, query_number));
      std::vector<Objective> objective_pick(
          kAllObjectives.begin(), kAllObjectives.begin() + objectives);
      for (int s = 0; s < sweeps; ++s) {
        ServiceRequest request;
        request.spec.query = query;
        request.spec.objectives = ObjectiveSet(objective_pick);
        WeightVector weights(objectives);
        for (int i = 0; i < objectives; ++i) {
          weights[i] = rng.NextDouble();
        }
        request.preference.weights = weights;
        sweep_requests.push_back(std::move(request));
      }
    }

    // Sequential drive so each request's latency attributes cleanly to
    // its outcome (miss = full DP, frontier hit = SelectPlan only).
    double miss_ms = 0, hit_ms = 0;
    int misses = 0, frontier_hits = 0, other = 0;
    for (const ServiceRequest& request : sweep_requests) {
      const ServiceResponse response = service.SubmitAndWait(request);
      if (response.status == ResponseStatus::kRejected ||
          response.result == nullptr || response.result->plan == nullptr) {
        std::printf("ERROR: weight-sweep request failed\n");
        return 1;
      }
      switch (response.cache) {
        case CacheOutcome::kMiss:
          ++misses;
          miss_ms += response.service_ms;
          break;
        case CacheOutcome::kFrontierHit:
          ++frontier_hits;
          hit_ms += response.service_ms;
          break;
        default:  // Exact or coalesced: identical weights can't recur here.
          ++other;
          break;
      }
    }

    const int total = static_cast<int>(sweep_requests.size());
    const int queries =
        static_cast<int>(workload_options.query_numbers.size());
    const double cold_mean = misses == 0 ? 0 : miss_ms / misses;
    const double hit_mean = frontier_hits == 0 ? 0 : hit_ms / frontier_hits;
    std::printf("\n-- weight sweep (%d weight draws per query) --\n", sweeps);
    std::printf("requests=%d optimizer_runs=%d frontier_hits=%d other=%d\n",
                total, misses, frontier_hits, other);
    std::printf("frontier-hit rate: %.3f\n",
                total == 0 ? 0 : static_cast<double>(frontier_hits) / total);
    std::printf("weight-change speedup: %.1fx (cold %.3f ms -> hit %.4f ms)\n",
                hit_mean > 0 ? cold_mean / hit_mean : 0, cold_mean, hit_mean);
    std::printf("stats: %s\n", service.Stats().ToString().c_str());
    bench::Json phase = bench::Json::Object();
    phase.Set("requests", total)
        .Set("optimizer_runs", misses)
        .Set("frontier_hits", frontier_hits)
        .Set("frontier_hit_rate",
             total == 0 ? 0.0 : static_cast<double>(frontier_hits) / total)
        .Set("cold_mean_ms", cold_mean)
        .Set("hit_mean_ms", hit_mean)
        .Set("weight_change_speedup",
             hit_mean > 0 ? cold_mean / hit_mean : 0.0);
    doc.Set("weight_sweep", std::move(phase));
    if (misses != queries || frontier_hits != total - queries) {
      std::printf("ERROR: every weight draw after the first per query must "
                  "be a frontier hit (expected %d runs, %d hits)\n",
                  queries, total - queries);
      return 1;
    }
  }

  // Phase 3: worker scaling (cache off: every request runs the DP).
  std::printf("\n-- worker scaling (cache disabled) --\n");
  std::printf("%8s %12s %12s %12s %9s\n", "workers", "wall_ms", "rps",
              "mean_ms", "speedup");
  bench::Json scaling = bench::Json::Array();
  double base_wall = 0;
  for (int workers = 1; workers <= max_workers; workers *= 2) {
    ServiceOptions options;
    options.num_workers = workers;
    options.enable_cache = false;
    options.operators = BenchOperatorSpace();
    OptimizationService service(options);
    const ServiceRunStats stats = DriveService(&service, requests);
    if (workers == 1) base_wall = stats.wall_ms;
    const double speedup =
        stats.wall_ms > 0 ? base_wall / stats.wall_ms : 0;
    std::printf("%8d %12.1f %12.2f %12.3f %8.2fx\n", workers, stats.wall_ms,
                stats.Throughput(), stats.mean_service_ms, speedup);
    bench::Json row = RunJson(stats);
    row.Set("workers", workers).Set("speedup_vs_1_worker", speedup);
    scaling.Push(std::move(row));
    if (stats.null_plans != 0 || stats.rejected != 0) {
      std::printf("ERROR: unexpected nulls/rejects at %d workers\n",
                  workers);
      return 1;
    }
  }
  doc.Set("worker_scaling", std::move(scaling));

  const std::string path = "BENCH_service.json";
  if (!bench::WriteJsonFile(path, doc)) {
    std::printf("ERROR: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace moqo

int main() { return moqo::Run(); }
