// Reproduces Figure 9: optimizer performance comparison for weighted MOQO —
// EXA versus RTA with alpha in {1.15, 1.5, 2}, for 3, 6, and 9 objectives
// over all 22 TPC-H queries. Reports the five per-cell metrics of the
// figure: timeout percentage, mean optimization time, mean memory, mean
// #Pareto plans of the last completely treated table set, and weighted cost
// as a percentage of the per-case best over all algorithms.
//
// Expected shape (paper): the EXA times out from ~3 joined tables at many
// objectives; the RTA never times out and is often orders of magnitude
// faster; RTA plan quality is far better than the worst-case alpha bound
// (< 1% average overhead for most queries even at alpha = 2); time and
// memory decrease as alpha grows.

#include <cstdio>

#include "bench/bench_config.h"
#include "harness/table_printer.h"
#include "harness/workload.h"

using namespace moqo;
using namespace moqo::bench;

namespace {

struct AlgoSpec {
  AlgorithmKind kind;
  double alpha;
  std::string label;
};

}  // namespace

int main() {
  const BenchConfig config = MakeConfig(/*default_timeout_ms=*/18000);
  Catalog catalog = Catalog::TpcH(config.scale_factor);
  WorkloadGenerator generator(&catalog, config.options);

  const std::vector<AlgoSpec> algorithms = {
      {AlgorithmKind::kExa, 1.0, "EXA"},
      {AlgorithmKind::kRta, 1.15, "RTA(1.15)"},
      {AlgorithmKind::kRta, 1.5, "RTA(1.5)"},
      {AlgorithmKind::kRta, 2.0, "RTA(2)"},
  };

  std::printf(
      "Figure 9: weighted MOQO, EXA vs RTA (SF=%g, timeout=%lld ms, "
      "%d cases/cell)\n\n",
      config.scale_factor,
      static_cast<long long>(config.options.timeout_ms), config.cases);

  TablePrinter table({"query", "tables", "objs", "algo", "timeout%",
                      "time_ms", "memory_KB", "pareto", "wcost%"});

  for (int l : {3, 6, 9}) {
    for (int query : TpcHQueryOrder()) {
      std::vector<TestCase> cases;
      for (int c = 0; c < config.cases; ++c) {
        cases.push_back(generator.WeightedCase(query, l, 2000 + c));
      }
      // outcomes[algorithm][case], filled in parallel.
      std::vector<std::vector<RunOutcome>> outcomes(
          algorithms.size(), std::vector<RunOutcome>(config.cases));
      ParallelFor(
          static_cast<int>(algorithms.size()) * config.cases, config.threads,
          [&](int job) {
            const int a = job / config.cases;
            const int c = job % config.cases;
            OptimizerOptions options = config.options;
            options.alpha = algorithms[a].alpha;
            outcomes[a][c] =
                RunCase(algorithms[a].kind, catalog, cases[c], options);
          });
      const std::vector<double> best = BestWeightedPerCase(outcomes);
      for (size_t a = 0; a < algorithms.size(); ++a) {
        const CellStats stats = Aggregate(outcomes[a], best);
        table.AddRow({"q" + std::to_string(query),
                      std::to_string(TpcHQueryTableCount(query)),
                      std::to_string(l), algorithms[a].label,
                      FormatDouble(stats.timeout_pct, 0),
                      FormatDouble(stats.mean_time_ms, 1),
                      FormatDouble(stats.mean_memory_kb, 0),
                      FormatDouble(stats.mean_pareto_plans, 1),
                      FormatDouble(stats.mean_weighted_cost_pct, 2)});
      }
    }
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}
