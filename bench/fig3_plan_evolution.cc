// Reproduces Figure 3: evolution of the optimal plan for TPC-H Query 3 as
// user preferences change.
//
//  (a) bound tuple loss to 0, weight on total time only
//      -> time-optimal plan (paper: hash joins);
//  (b) add weight on buffer footprint
//      -> memory-hungry hash joins disappear (paper: SMJ + IdxNL);
//  (c) add an upper bound on startup time
//      -> fully pipelined plan (paper: IdxNL joins only).

#include <cstdio>

#include "bench/bench_config.h"
#include "core/exa.h"
#include "core/ira.h"
#include "plan/plan_printer.h"
#include "query/tpch_queries.h"

using namespace moqo;
using namespace moqo::bench;

namespace {

void Show(const char* title, const Query& query, const OptimizerBase& opt,
          const OptimizerResult& result) {
  std::printf("--- %s ---\n%scost: %s\noperators: %s\n\n", title,
              ExplainPlan(result.plan, query, opt.registry()).c_str(),
              result.cost.ToString().c_str(),
              OperatorInventory(result.plan, opt.registry()).c_str());
}

}  // namespace

int main() {
  BenchConfig config = MakeConfig(/*default_timeout_ms=*/10000);
  // Q3 is a three-table query; full TPC-H scale is cheap here and makes
  // the hash-vs-pipelined tradeoff of the figure visible.
  config.scale_factor = EnvDouble("MOQO_SF", 1.0);
  Catalog catalog = Catalog::TpcH(config.scale_factor);
  Query query = MakeTpcHQuery(&catalog, 3);

  // Objective layout: time, startup, buffer, tuple loss.
  const ObjectiveSet objectives({Objective::kTotalTime,
                                 Objective::kStartupTime,
                                 Objective::kBufferFootprint,
                                 Objective::kTupleLoss});
  std::printf("Figure 3: TPC-H Q3 plan evolution under changing "
              "preferences (SF=%g)\n\n", config.scale_factor);

  // (a) Tuple loss bounded by 0; optimize total time.
  MOQOProblem a;
  a.query = &query;
  a.objectives = objectives;
  a.weights = WeightVector(4);
  a.weights[0] = 1.0;
  a.bounds = BoundVector::Unbounded(4);
  a.bounds[3] = 0.0;  // No sampling allowed.
  IRAOptimizer opt_a(config.options);
  OptimizerResult res_a = opt_a.Optimize(a);
  Show("(a) time-optimal, tuple loss = 0", query, opt_a, res_a);

  // (b) Additional weight on buffer footprint.
  MOQOProblem b = a;
  b.weights[2] = 0.1;  // Buffer bytes are a large-magnitude unit.
  IRAOptimizer opt_b(config.options);
  OptimizerResult res_b = opt_b.Optimize(b);
  Show("(b) + weight on buffer footprint", query, opt_b, res_b);

  // (c) Additional bound on startup time: half of (b)'s startup.
  MOQOProblem c = b;
  c.bounds[1] = res_b.cost[1] > 0 ? res_b.cost[1] * 0.01 + 1e-3 : 1e-3;
  IRAOptimizer opt_c(config.options);
  OptimizerResult res_c = opt_c.Optimize(c);
  Show("(c) + bound on startup time", query, opt_c, res_c);

  std::printf(
      "paper shape: (a) may use memory-hungry hash joins; (b) drops hash\n"
      "joins for memory-lean operators; (c) forces pipelined (IdxNL) "
      "joins.\n");
  const bool b_dropped_hash =
      std::string(OperatorInventory(res_b.plan, opt_b.registry()))
          .find("HashJ") == std::string::npos;
  const bool c_pipelined =
      std::string(OperatorInventory(res_c.plan, opt_c.registry()))
          .find("HashJ") == std::string::npos;
  std::printf("reproduced: (b) hash-free=%s, (c) hash-free=%s, startup "
              "(a)=%.2f (b)=%.2f (c)=%.2f\n",
              b_dropped_hash ? "yes" : "no", c_pipelined ? "yes" : "no",
              res_a.cost[1], res_b.cost[1], res_c.cost[1]);
  return 0;
}
