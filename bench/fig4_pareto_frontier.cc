// Reproduces Figure 4: three-dimensional Pareto frontier approximations for
// TPC-H Query 5, objectives {tuple loss, buffer footprint, total time},
// computed by the RTA at coarse precision (alpha = 2) and fine precision
// (alpha = 1.25). The paper renders 3-D surfaces; we print the frontier
// points (the same data) plus 2-D ASCII projections.
//
// Expected shape: the fine-grained frontier contains more points than the
// coarse one, covers it, and both expose the loss/time tradeoff induced by
// the sampling operators.

#include <cstdio>

#include "bench/bench_config.h"
#include "core/rta.h"
#include "frontier/frontier.h"
#include "query/tpch_queries.h"

using namespace moqo;
using namespace moqo::bench;

int main() {
  const BenchConfig config = MakeConfig(/*default_timeout_ms=*/18000);
  Catalog catalog = Catalog::TpcH(config.scale_factor);
  Query query = MakeTpcHQuery(&catalog, 5);

  MOQOProblem problem;
  problem.query = &query;
  problem.objectives = ObjectiveSet({Objective::kTupleLoss,
                                     Objective::kBufferFootprint,
                                     Objective::kTotalTime});
  problem.weights = WeightVector::Uniform(3);
  problem.bounds = BoundVector::Unbounded(3);

  std::printf("Figure 4: 3-D Pareto frontier approximations for TPC-H Q5\n"
              "objectives: tuple_loss x buffer(bytes) x total_time "
              "(SF=%g)\n\n", config.scale_factor);

  std::vector<CostVector> coarse, fine;
  for (double alpha : {2.0, 1.25}) {
    OptimizerOptions options = config.options;
    options.alpha = alpha;
    RTAOptimizer rta(options);
    OptimizerResult result = rta.Optimize(problem);
    std::printf("--- alpha = %.2f: %d frontier points (%.1f ms, %s) ---\n",
                alpha, result.frontier_size(),
                result.metrics.optimization_ms,
                result.metrics.timed_out ? "TIMEOUT" : "complete");
    std::printf("%-10s %-14s %-12s\n", "tuple_loss", "buffer_bytes",
                "time_units");
    // Print a bounded sample of the frontier, sorted by tuple loss.
    std::vector<CostVector> frontier = result.frontier();
    std::sort(frontier.begin(), frontier.end(),
              [](const CostVector& a, const CostVector& b) {
                return a[0] != b[0] ? a[0] < b[0] : a[2] < b[2];
              });
    const size_t step = std::max<size_t>(1, frontier.size() / 25);
    for (size_t i = 0; i < frontier.size(); i += step) {
      std::printf("%-10.4f %-14.0f %-12.1f\n", frontier[i][0],
                  frontier[i][1], frontier[i][2]);
    }
    // ASCII projection: tuple loss (x) vs total time (y), Figure-4 style.
    std::printf("\nprojection tuple_loss x total_time:\n%s\n",
                AsciiScatter(Project(frontier, {0, 2}), 64, 16, "tuple_loss",
                             "total_time")
                    .c_str());
    (alpha == 2.0 ? coarse : fine) = frontier;
  }

  // The finer frontier must be at least as rich and must alpha-cover the
  // coarse one (both approximate the same true frontier).
  std::printf("frontier sizes: alpha=2 -> %zu points, alpha=1.25 -> %zu "
              "points (paper: finer approximation, more points)\n",
              coarse.size(), fine.size());
  std::printf("fine 2.0-covers coarse: %s\n",
              FindUncoveredVector(fine, coarse, 2.0).has_value() ? "no"
                                                                 : "yes");
  return 0;
}
