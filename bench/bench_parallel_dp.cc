// Copyright (c) 2026 moqo authors. MIT license.
//
// Parallel DP bench: wall-clock speedup of the level-synchronous parallel
// FindParetoPlans over the serial engine, on large synthetic chain, star,
// and cycle join graphs (the shapes whose DP level widths differ most:
// chains have O(n) sets per level, stars and cycles exponential middles).
//
// For every shape and thread count the bench runs the *same* DP — the
// frontier must be byte-for-byte identical to the 1-thread run (exact
// pruning is order-independent per table set; the bench fails hard on any
// mismatch) — and reports per-thread-count latency percentiles, considered
// plans per second, and speedup vs 1 thread, both human-readable and as a
// machine-readable BENCH_parallel_dp.json artifact.
//
// Env knobs (bench_config.h conventions):
//   MOQO_OBJECTIVES  cost dimensions                    (default 3)
//   MOQO_REPS        timed repetitions per config       (default 3)
//   MOQO_MAX_DP_THREADS  sweep 1,2,4,..,this            (default 4)
//   MOQO_CHAIN       chain query relations              (default 12)
//   MOQO_STAR        star query relations               (default 9)
//   MOQO_CYCLE       cycle query relations              (default 10)
//   MOQO_ALPHA       pruning precision (1 = exact)      (default 1.0)

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "catalog/catalog.h"
#include "core/dp_driver.h"
#include "core/optimizer.h"
#include "harness/experiment.h"
#include "obs/histogram.h"
#include "query/query.h"
#include "util/thread_pool.h"

namespace moqo {
namespace {

/// n uniform relations r0..r{n-1}, one indexed join key each; per-table
/// cardinalities vary so cost vectors (and frontier shapes) differ across
/// relations.
Catalog MakeSyntheticCatalog(int tables) {
  Catalog catalog;
  for (int i = 0; i < tables; ++i) {
    const long rows = 500 * (1 + (i * 7) % 13);
    Table table("r" + std::to_string(i), rows, 48);
    ColumnStats key;
    key.name = "k";
    key.ndv = 100;
    key.min_value = 0;
    key.max_value = 99;
    key.histogram = Histogram::Uniform(0, 99, 8, rows);
    table.AddColumn(key);
    table.AddIndex("k");
    catalog.AddTable(std::move(table));
  }
  return catalog;
}

Query MakeShapeQuery(const Catalog* catalog, const std::string& shape,
                     int tables) {
  Query query(catalog, shape + std::to_string(tables));
  for (int i = 0; i < tables; ++i) query.AddTable("r" + std::to_string(i));
  if (shape == "chain" || shape == "cycle") {
    for (int i = 0; i + 1 < tables; ++i) query.AddJoin(i, "k", i + 1, "k");
    if (shape == "cycle") query.AddJoin(tables - 1, "k", 0, "k");
  } else {  // star: r0 is the hub.
    for (int i = 1; i < tables; ++i) query.AddJoin(0, "k", i, "k");
  }
  return query;
}

struct ConfigResult {
  int threads = 0;
  std::vector<double> ms;
  std::vector<CostVector> frontier;
  long considered = 0;
  bool frontier_identical = true;
};

int Run() {
  const int objectives =
      std::clamp(EnvInt("MOQO_OBJECTIVES", 3), 1, kNumObjectives);
  const int reps = EnvInt("MOQO_REPS", 3);
  const int max_threads = EnvInt("MOQO_MAX_DP_THREADS", 4);
  const double alpha = EnvDouble("MOQO_ALPHA", 1.0);

  OperatorRegistry::Options op_options;
  op_options.sampling_rates = {0.05};
  op_options.dops = {1, 2};
  OperatorRegistry registry(op_options);

  std::vector<Objective> objective_pick(
      kAllObjectives.begin(), kAllObjectives.begin() + objectives);
  const ObjectiveSet objective_set(objective_pick);

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("== parallel DP bench ==\n");
  std::printf("objectives=%d alpha=%.2f reps=%d hardware_concurrency=%u\n\n",
              objectives, alpha, reps, hw);
  if (hw < static_cast<unsigned>(max_threads)) {
    std::printf("WARNING: sweeping to %d threads on %u cores — speedups "
                "above 1x need a bigger box\n\n",
                max_threads, hw);
  }

  bench::Json doc = bench::Json::Object();
  doc.Set("bench", "parallel_dp")
      .Set("hardware_concurrency", static_cast<int>(hw))
      .Set("objectives", objectives)
      .Set("alpha", alpha)
      .Set("reps", reps);
  bench::Json shapes_json = bench::Json::Array();

  const std::vector<std::pair<std::string, int>> shapes = {
      {"chain", EnvInt("MOQO_CHAIN", 12)},
      {"star", EnvInt("MOQO_STAR", 9)},
      {"cycle", EnvInt("MOQO_CYCLE", 10)},
  };

  bool ok = true;
  bool swept_4_threads = false;
  double best_speedup_at4 = 0;
  for (const auto& [shape, tables] : shapes) {
    Catalog catalog = MakeSyntheticCatalog(tables);
    Query query = MakeShapeQuery(&catalog, shape, tables);
    CostModel model(&query, &registry, objective_set);

    std::printf("-- %s, %d relations --\n", shape.c_str(), tables);
    std::printf("%8s %10s %10s %10s %14s %9s\n", "threads", "p50_ms",
                "p99_ms", "mean_ms", "considered/s", "speedup");

    std::vector<ConfigResult> results;
    for (int threads = 1; threads <= max_threads; threads *= 2) {
      ConfigResult result;
      result.threads = threads;
      std::unique_ptr<ThreadPool> pool;
      if (threads > 1) pool = std::make_unique<ThreadPool>(threads - 1);
      for (int rep = 0; rep < reps; ++rep) {
        Arena arena;
        DPPlanGenerator generator(&model, &registry, &arena);
        DPOptions options;
        options.alpha = alpha;
        options.parallelism = threads;
        options.pool = pool.get();
        StopWatch watch;
        const ParetoSet& final_set = generator.Run(query, options);
        result.ms.push_back(watch.ElapsedMillis());
        if (rep == 0) {
          result.frontier = final_set.Frontier();
          result.considered = generator.stats().considered_plans;
        }
      }
      if (!results.empty()) {
        result.frontier_identical =
            result.frontier == results.front().frontier &&
            result.considered == results.front().considered;
        if (!result.frontier_identical) {
          std::printf("ERROR: %s frontier diverged at %d threads "
                      "(%zu vs %zu plans, %ld vs %ld considered)\n",
                      shape.c_str(), threads, result.frontier.size(),
                      results.front().frontier.size(), result.considered,
                      results.front().considered);
          ok = false;
        }
      }
      results.push_back(std::move(result));
    }

    const double base_p50 =
        SnapshotOfSamples(results.front().ms).PercentileMs(50);
    bench::Json shape_json = bench::Json::Object();
    shape_json.Set("shape", shape.c_str())
        .Set("tables", tables)
        .Set("frontier_size",
             static_cast<int>(results.front().frontier.size()))
        .Set("considered_plans", static_cast<long long>(
                                     results.front().considered));
    bench::Json runs_json = bench::Json::Array();
    for (const ConfigResult& result : results) {
      const HistogramSnapshot latency = SnapshotOfSamples(result.ms);
      const double p50 = latency.PercentileMs(50);
      const double p99 = latency.PercentileMs(99);
      double mean = 0;
      for (double ms : result.ms) mean += ms;
      mean /= result.ms.size();
      const double per_s =
          mean > 0 ? result.considered / (mean / 1000.0) : 0;
      const double speedup = p50 > 0 ? base_p50 / p50 : 0;
      if (result.threads == 4) {
        swept_4_threads = true;
        best_speedup_at4 = std::max(best_speedup_at4, speedup);
      }
      std::printf("%8d %10.2f %10.2f %10.2f %14.0f %8.2fx\n",
                  result.threads, p50, p99, mean, per_s, speedup);
      bench::Json run = bench::Json::Object();
      run.Set("threads", result.threads)
          .Set("p50_ms", p50)
          .Set("p99_ms", p99)
          .Set("mean_ms", mean)
          .Set("considered_per_s", per_s)
          .Set("speedup_vs_1_thread", speedup)
          .Set("frontier_identical", result.frontier_identical);
      runs_json.Push(std::move(run));
    }
    shape_json.Set("results", std::move(runs_json));
    shapes_json.Push(std::move(shape_json));
    std::printf("\n");
  }
  doc.Set("shapes", std::move(shapes_json));
  // Only meaningful when the sweep actually included 4 threads (the
  // acceptance number); omit it otherwise rather than recording a bogus 0.
  if (swept_4_threads) doc.Set("speedup_at_4_threads", best_speedup_at4);

  const std::string path = "BENCH_parallel_dp.json";
  if (!bench::WriteJsonFile(path, doc)) {
    std::printf("ERROR: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  if (swept_4_threads && best_speedup_at4 < 2.0 && hw >= 4) {
    std::printf("WARNING: best 4-thread speedup %.2fx below 2x target\n",
                best_speedup_at4);
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace moqo

int main() { return moqo::Run(); }
