// Copyright (c) 2026 moqo authors. MIT license.
//
// Shared configuration of the figure-reproduction benches.
//
// The paper ran on a 12-core server with a TWO-HOUR timeout per optimizer
// run and 20 test cases per cell; a faithful rerun takes weeks. Per the
// DESIGN.md deviation ledger the benches scale the whole experiment down —
// search space (TPC-H scale factor, operator fan-out), timeout, and case
// count — such that the paper's relative shapes (who times out, who wins,
// by how many orders of magnitude) are preserved at CI-scale runtimes.
// Every knob can be restored toward paper scale via environment variables:
//
//   MOQO_SF          TPC-H scale factor                (default 0.01)
//   MOQO_TIMEOUT_MS  per-run timeout in milliseconds   (default 5000 for
//                    Figure 5, 18000 for Figures 9/10)
//   MOQO_CASES       test cases per cell               (default 2; paper 20)
//   MOQO_THREADS     concurrent optimizer runs         (default 5, like the
//                    paper's "five optimizer threads ran in parallel")
//   MOQO_FULL_OPS    1 = paper-faithful operator space (12 scan/12 join
//                    configs); default 0 = reduced (6 scan/8 join)

#ifndef MOQO_BENCH_BENCH_CONFIG_H_
#define MOQO_BENCH_BENCH_CONFIG_H_

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "harness/experiment.h"

namespace moqo {
namespace bench {

struct BenchConfig {
  double scale_factor;
  int cases;
  int threads;
  OptimizerOptions options;  ///< timeout + operator space preconfigured.
};

inline BenchConfig MakeConfig(int default_timeout_ms) {
  BenchConfig config;
  config.scale_factor = EnvDouble("MOQO_SF", 0.01);
  config.cases = EnvInt("MOQO_CASES", 2);
  config.threads = EnvInt("MOQO_THREADS", 5);
  config.options.timeout_ms = EnvInt("MOQO_TIMEOUT_MS", default_timeout_ms);
  if (EnvInt("MOQO_FULL_OPS", 0) == 0) {
    config.options.operators.sampling_rates = {0.05, 0.01};
    config.options.operators.dops = {1, 4};
  }
  return config;
}

/// Runs jobs[0..n) on `threads` workers; blocks until all complete.
inline void ParallelFor(int n, int threads,
                        const std::function<void(int)>& job) {
  std::atomic<int> next{0};
  auto worker = [&] {
    for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) job(i);
  };
  std::vector<std::thread> pool;
  const int workers = std::max(1, std::min(threads, n));
  pool.reserve(workers);
  for (int t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
}

}  // namespace bench
}  // namespace moqo

#endif  // MOQO_BENCH_BENCH_CONFIG_H_
