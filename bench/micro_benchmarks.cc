// Micro benchmarks (google-benchmark) for the optimizer's hot paths:
// dominance checks, Pareto-set pruning, cost-model combination, subset
// enumeration, and end-to-end optimization of small queries.

#include <benchmark/benchmark.h>

#include "core/exa.h"
#include "core/pareto_set.h"
#include "core/rta.h"
#include "model/cost_model.h"
#include "query/tpch_queries.h"
#include "util/random.h"

namespace moqo {
namespace {

CostVector RandomVector(Xoshiro256* rng, int dims) {
  CostVector c(dims);
  for (int i = 0; i < dims; ++i) c[i] = rng->NextDouble() * 100;
  return c;
}

void BM_Dominates(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  Xoshiro256 rng(1);
  const CostVector a = RandomVector(&rng, dims);
  const CostVector b = RandomVector(&rng, dims);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dominates(a, b));
  }
}
BENCHMARK(BM_Dominates)->Arg(3)->Arg(6)->Arg(9);

void BM_ApproxDominates(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  Xoshiro256 rng(2);
  const CostVector a = RandomVector(&rng, dims);
  const CostVector b = RandomVector(&rng, dims);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApproxDominates(a, b, 1.2));
  }
}
BENCHMARK(BM_ApproxDominates)->Arg(3)->Arg(9);

void BM_ParetoSetPrune(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  const double alpha = state.range(1) / 100.0;
  Xoshiro256 rng(3);
  Arena arena;
  std::vector<PlanNode*> plans;
  for (int i = 0; i < 20000; ++i) {
    PlanNode* plan = arena.New<PlanNode>();
    plan->cost = RandomVector(&rng, dims);
    plans.push_back(plan);
  }
  const ParetoSet::PruneOptions options{alpha, false};
  for (auto _ : state) {
    ParetoSet set;
    for (PlanNode* plan : plans) set.Prune(plan, options);
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(state.iterations() * plans.size());
}
BENCHMARK(BM_ParetoSetPrune)
    ->Args({3, 100})
    ->Args({6, 100})
    ->Args({9, 100})
    ->Args({9, 115})
    ->Args({9, 150});

void BM_CostModelCombine(benchmark::State& state) {
  Catalog catalog = Catalog::TpcH(0.01);
  Query query = MakeTpcHQuery(&catalog, 3);
  OperatorRegistry registry;
  CostModel model(&query, &registry, ObjectiveSet::All());
  Arena arena;
  const PlanNode* left =
      model.MakeScan(registry.scan_configs()[0], 0, &arena);
  const PlanNode* right =
      model.MakeScan(registry.scan_configs()[0], 1, &arena);
  const auto split = model.AnalyzeSplit(left->tables, right->tables);
  int config = 0;
  const auto& joins = registry.join_configs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.JoinNode(joins[config % joins.size()], left, right, split));
    ++config;
  }
}
BENCHMARK(BM_CostModelCombine);

void BM_SubsetEnumeration(benchmark::State& state) {
  const TableSet universe = TableSet::Prefix(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    uint64_t acc = 0;
    for (SubsetIterator it(universe); !it.Done(); it.Next()) {
      acc ^= it.Current().mask();
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_SubsetEnumeration)->Arg(8)->Arg(12)->Arg(16);

void BM_OptimizeTpcH(benchmark::State& state) {
  const int query_number = static_cast<int>(state.range(0));
  const int num_objectives = static_cast<int>(state.range(1));
  Catalog catalog = Catalog::TpcH(0.01);
  Query query = MakeTpcHQuery(&catalog, query_number);
  MOQOProblem problem;
  problem.query = &query;
  std::vector<Objective> objectives(kAllObjectives.begin(),
                                    kAllObjectives.begin() + num_objectives);
  problem.objectives = ObjectiveSet(objectives);
  problem.weights = WeightVector::Uniform(num_objectives);
  OptimizerOptions options;
  options.alpha = 1.5;
  options.operators.sampling_rates = {0.05, 0.01};
  options.operators.dops = {1, 4};
  for (auto _ : state) {
    RTAOptimizer rta(options);
    benchmark::DoNotOptimize(rta.Optimize(problem).weighted_cost);
  }
}
BENCHMARK(BM_OptimizeTpcH)
    ->Args({3, 3})
    ->Args({3, 6})
    ->Args({10, 3})
    ->Args({10, 6})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace moqo
