// Reproduces Figure 10: optimizer performance comparison for bounded MOQO —
// EXA versus IRA with alpha in {1.15, 1.5, 2}. Optimization always
// considers all nine objectives while the number of bounds varies over
// {3, 6, 9}. Reports timeout percentage, mean time, mean memory (of the
// last iteration), mean #iterations, and weighted cost as a percentage of
// the per-case best.
//
// Expected shape (paper): the EXA's performance is insensitive to the
// number of bounds and times out massively (464 timeouts over the paper's
// sweep); the IRA has at most a handful of timeouts; IRA time/memory tend
// to be higher than the boundless RTA because hard bounds can force finer
// internal precision; the number of iterations can increase with alpha_U
// without significantly increasing total time.
//
// Note: although the EXA's *runtime* is insensitive to the number of
// bounds (it computes the full Pareto set regardless), its SelectBest step
// picks a different plan per bound vector, so each bound count gets its
// own EXA run.

#include <cstdio>

#include "bench/bench_config.h"
#include "harness/table_printer.h"
#include "harness/workload.h"

using namespace moqo;
using namespace moqo::bench;

int main() {
  const BenchConfig config = MakeConfig(/*default_timeout_ms=*/18000);
  Catalog catalog = Catalog::TpcH(config.scale_factor);
  WorkloadGenerator generator(&catalog, config.options);

  const std::vector<double> ira_alphas = {1.15, 1.5, 2.0};
  const std::vector<int> bound_counts = {3, 6, 9};

  std::printf(
      "Figure 10: bounded MOQO (all 9 objectives), EXA vs IRA (SF=%g, "
      "timeout=%lld ms, %d cases/cell)\n\n",
      config.scale_factor,
      static_cast<long long>(config.options.timeout_ms), config.cases);

  TablePrinter table({"query", "tables", "bounds", "algo", "timeout%",
                      "time_ms", "memory_KB", "iters", "wcost%"});

  long exa_timeouts = 0, ira_timeouts = 0;
  double exa_total_ms = 0, ira_total_ms = 0;

  for (int query : TpcHQueryOrder()) {
    // Generate all bounded cases for this query up front.
    std::vector<std::vector<TestCase>> cases(bound_counts.size());
    for (size_t b = 0; b < bound_counts.size(); ++b) {
      for (int c = 0; c < config.cases; ++c) {
        cases[b].push_back(
            generator.BoundedCase(query, bound_counts[b], 3000 + c));
      }
    }

    for (size_t b = 0; b < bound_counts.size(); ++b) {
      // outcomes[0] = EXA, then one row per IRA alpha.
      std::vector<std::vector<RunOutcome>> outcomes(
          1 + ira_alphas.size(), std::vector<RunOutcome>(config.cases));
      ParallelFor(
          static_cast<int>(1 + ira_alphas.size()) * config.cases,
          config.threads, [&](int job) {
            const int a = job / config.cases;
            const int c = job % config.cases;
            if (a == 0) {
              outcomes[0][c] = RunCase(AlgorithmKind::kExa, catalog,
                                       cases[b][c], config.options);
            } else {
              OptimizerOptions options = config.options;
              options.alpha = ira_alphas[a - 1];
              outcomes[a][c] = RunCase(AlgorithmKind::kIra, catalog,
                                       cases[b][c], options);
            }
          });
      const std::vector<double> best = BestWeightedPerCase(outcomes);
      for (size_t a = 0; a < outcomes.size(); ++a) {
        const std::string label =
            a == 0 ? "EXA"
                   : "IRA(" + FormatDouble(ira_alphas[a - 1], 2) + ")";
        const CellStats stats = Aggregate(outcomes[a], best);
        table.AddRow({"q" + std::to_string(query),
                      std::to_string(TpcHQueryTableCount(query)),
                      std::to_string(bound_counts[b]), label,
                      FormatDouble(stats.timeout_pct, 0),
                      FormatDouble(stats.mean_time_ms, 1),
                      FormatDouble(stats.mean_memory_kb, 0),
                      FormatDouble(stats.mean_iterations, 1),
                      FormatDouble(stats.mean_weighted_cost_pct, 2)});
        for (const RunOutcome& o : outcomes[a]) {
          if (a == 0) {
            exa_timeouts += o.metrics.timed_out ? 1 : 0;
            exa_total_ms += o.metrics.optimization_ms;
          } else {
            ira_timeouts += o.metrics.timed_out ? 1 : 0;
            ira_total_ms += o.metrics.optimization_ms;
          }
        }
      }
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "totals: EXA %ld timeouts, %.1f s optimization; IRA (all alphas) %ld "
      "timeouts, %.1f s\n"
      "(paper: 464 EXA timeouts vs at most 4 per IRA instance; total 1200+ "
      "hours EXA vs < 15 hours IRA(1.15))\n",
      exa_timeouts, exa_total_ms / 1000.0, ira_timeouts,
      ira_total_ms / 1000.0);
  return 0;
}
