// Copyright (c) 2026 moqo authors. MIT license.
//
// Minimal ordered JSON document builder for the machine-readable
// BENCH_*.json artifacts (ops/s, latency percentiles, speedups) that the
// perf-trajectory tooling accumulates across commits. No external deps;
// supports exactly what the benches need: objects (insertion-ordered),
// arrays, numbers, strings, and booleans.

#ifndef MOQO_BENCH_BENCH_JSON_H_
#define MOQO_BENCH_BENCH_JSON_H_

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace moqo {
namespace bench {

class Json {
 public:
  static Json Object() { return Json(Kind::kObject); }
  static Json Array() { return Json(Kind::kArray); }
  static Json Str(std::string v) {
    Json j(Kind::kString);
    j.string_ = std::move(v);
    return j;
  }
  static Json Num(double v) {
    Json j(Kind::kNumber);
    j.number_ = v;
    return j;
  }
  static Json Int(long long v) {
    Json j(Kind::kNumber);
    j.number_ = static_cast<double>(v);
    j.integral_ = true;
    return j;
  }
  static Json Bool(bool v) {
    Json j(Kind::kBool);
    j.bool_ = v;
    return j;
  }

  /// Object member (insertion order preserved). Returns *this for chaining.
  Json& Set(const std::string& key, Json value) {
    members_.emplace_back(key, std::move(value));
    return *this;
  }
  Json& Set(const std::string& key, double v) { return Set(key, Num(v)); }
  Json& Set(const std::string& key, int v) { return Set(key, Int(v)); }
  Json& Set(const std::string& key, long long v) { return Set(key, Int(v)); }
  Json& Set(const std::string& key, size_t v) {
    return Set(key, Int(static_cast<long long>(v)));
  }
  Json& Set(const std::string& key, bool v) { return Set(key, Bool(v)); }
  Json& Set(const std::string& key, const char* v) {
    return Set(key, Str(v));
  }

  /// Array element.
  Json& Push(Json value) {
    members_.emplace_back(std::string(), std::move(value));
    return *this;
  }

  std::string Dump(int indent = 0) const {
    std::string out;
    Append(&out, indent);
    out.push_back('\n');
    return out;
  }

 private:
  enum class Kind { kObject, kArray, kString, kNumber, kBool };

  explicit Json(Kind kind) : kind_(kind) {}

  static void AppendEscaped(std::string* out, const std::string& s) {
    out->push_back('"');
    for (char c : s) {
      switch (c) {
        case '"': *out += "\\\""; break;
        case '\\': *out += "\\\\"; break;
        case '\n': *out += "\\n"; break;
        case '\t': *out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            *out += buf;
          } else {
            out->push_back(c);
          }
      }
    }
    out->push_back('"');
  }

  void Append(std::string* out, int indent) const {
    const std::string pad(indent, ' ');
    const std::string inner_pad(indent + 2, ' ');
    switch (kind_) {
      case Kind::kString:
        AppendEscaped(out, string_);
        break;
      case Kind::kBool:
        *out += bool_ ? "true" : "false";
        break;
      case Kind::kNumber: {
        char buf[64];
        if (integral_ || (std::floor(number_) == number_ &&
                          std::fabs(number_) < 1e15)) {
          std::snprintf(buf, sizeof(buf), "%lld",
                        static_cast<long long>(number_));
        } else if (std::isfinite(number_)) {
          std::snprintf(buf, sizeof(buf), "%.6g", number_);
        } else {
          std::snprintf(buf, sizeof(buf), "null");  // JSON has no inf/nan.
        }
        *out += buf;
        break;
      }
      case Kind::kObject:
      case Kind::kArray: {
        const char open = kind_ == Kind::kObject ? '{' : '[';
        const char close = kind_ == Kind::kObject ? '}' : ']';
        if (members_.empty()) {
          out->push_back(open);
          out->push_back(close);
          break;
        }
        out->push_back(open);
        *out += "\n";
        for (size_t i = 0; i < members_.size(); ++i) {
          *out += inner_pad;
          if (kind_ == Kind::kObject) {
            AppendEscaped(out, members_[i].first);
            *out += ": ";
          }
          members_[i].second.Append(out, indent + 2);
          if (i + 1 < members_.size()) *out += ",";
          *out += "\n";
        }
        *out += pad;
        out->push_back(close);
        break;
      }
    }
  }

  Kind kind_;
  std::string string_;
  double number_ = 0;
  bool integral_ = false;
  bool bool_ = false;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Writes `json` to `path` (overwriting); returns false on I/O failure.
inline bool WriteJsonFile(const std::string& path, const Json& json) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string text = json.Dump();
  const bool ok = std::fwrite(text.data(), 1, text.size(), file) ==
                  text.size();
  return std::fclose(file) == 0 && ok;
}

}  // namespace bench
}  // namespace moqo

#endif  // MOQO_BENCH_BENCH_JSON_H_
