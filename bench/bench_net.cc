// Copyright (c) 2026 moqo authors. MIT license.
//
// Network front-end bench (PR 7): drives the epoll streaming server over
// loopback and quantifies the serving properties the wire layer adds on
// top of FrontierSession:
//
//   1. Connection churn. Threads open/tear down connections (abrupt
//      disconnects, cancel-then-vanish, polite close) as fast as they
//      can. Reported: sustained opens/sec. Hard checks: zero protocol
//      errors, every connection reaped, no leaked in-flight session.
//   2. Slow reader. A client opens a multi-rung ladder and reads NOTHING
//      until the ladder finishes. The event loop must stay responsive (a
//      concurrent fast client keeps completing opens) and the session
//      must refine at full speed — newest-wins queueing means a slow
//      reader skips rungs, never stalls them. Reported: pushes dropped,
//      rungs the slow reader still saw, fast-client p50 during the stall.
//   3. Cancel storm. Every client cancels immediately after OPEN.
//      Hard checks: every connection gets its DONE, server drains clean.
//   4. Mixed fairness — the acceptance gate. Closed-loop interactive
//      clients (single-rung ladders, quick_first=false so the first
//      frontier rides the worker pool) measure OPEN -> first-frontier
//      latency while background clients hold long refinement ladders.
//      Three configs: floor (no background), FIFO (priority_admission
//      off), priority (on). Hard checks: zero first-frontier rejects,
//      priority sheds refinement (sheds > 0) while FIFO sheds nothing,
//      and priority p99 must not regress vs FIFO (> 1.25x fails).
//
// Env knobs (quick CI sizes by default):
//   MOQO_NET_TABLES        tables per query            (default 6)
//   MOQO_NET_QUERIES       distinct queries            (default 6)
//   MOQO_NET_CHURN_THREADS churn client threads        (default 4)
//   MOQO_NET_CHURN_CONNS   connections per thread      (default 16)
//   MOQO_NET_REFINERS      background ladder clients   (default 4)
//   MOQO_NET_INTERACTIVE   interactive clients         (default 2)
//   MOQO_NET_OPENS         opens per interactive client (default 15)

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_json.h"
#include "harness/experiment.h"
#include "harness/workload.h"
#include "net/blocking_client.h"
#include "net/net_server.h"
#include "obs/histogram.h"
#include "rt/failpoint.h"
#include "service/optimization_service.h"
#include "util/deadline.h"

namespace moqo {
namespace {

using net::BlockingNetClient;
using net::FrontierUpdateMsg;
using net::MsgType;
using net::NetOptions;
using net::NetServer;
using net::OpenFrontierMsg;

OperatorRegistry::Options BenchOperatorSpace() {
  OperatorRegistry::Options options;
  options.sampling_rates = {0.05};
  options.dops = {1, 2};
  return options;
}

/// Catalog + query table + a fresh service/server pair per scenario, so
/// every phase starts with clean counters.
struct NetBenchRig {
  NetBenchRig(const SharedSubgraphOptions& workload,
              ServiceOptions service_options, NetOptions net_options = {}) {
    catalog = MakeSharedSubgraphCatalog(workload);
    std::vector<ProblemSpec> specs =
        BuildSharedSubgraphSpecs(&catalog, workload);
    for (size_t i = 0; i < specs.size(); ++i) {
      queries["q" + std::to_string(i)] = specs[i].query;
    }
    service =
        std::make_unique<OptimizationService>(std::move(service_options));
    net_options.resolve_query =
        [this](const std::string& id) -> std::shared_ptr<const Query> {
      auto it = queries.find(id);
      return it == queries.end() ? nullptr : it->second;
    };
    server = std::make_unique<NetServer>(service.get(), net_options);
  }

  ~NetBenchRig() { server->Stop(); }

  std::string QueryId(int i) const {
    return "q" + std::to_string(static_cast<size_t>(i) % queries.size());
  }

  Catalog catalog;
  std::unordered_map<std::string, std::shared_ptr<const Query>> queries;
  std::unique_ptr<OptimizationService> service;
  std::unique_ptr<NetServer> server;
};

ServiceOptions BaseServiceOptions(int workers) {
  ServiceOptions options;
  options.num_workers = workers;
  options.operators = BenchOperatorSpace();
  // Every open runs a real ladder: the bench measures serving, not cache
  // echoes.
  options.enable_cache = false;
  options.enable_coalescing = false;
  return options;
}

/// Interactive shape: one cheap rung, first frontier via the worker pool.
OpenFrontierMsg InteractiveOpen(const std::string& query_id) {
  OpenFrontierMsg open;
  open.query_id = query_id;
  open.objectives = {0, 1, 2};
  open.algorithm = static_cast<int8_t>(AlgorithmKind::kRta);
  open.alpha = 2.0;
  open.alpha_start = 2.0;
  open.max_steps = 1;
  open.quick_first = 0;
  return open;
}

/// Background shape: a long refinement ladder.
OpenFrontierMsg RefinementOpen(const std::string& query_id) {
  OpenFrontierMsg open = InteractiveOpen(query_id);
  open.alpha = 1.05;
  open.alpha_start = 8.0;
  open.max_steps = 8;
  return open;
}

bool AwaitActiveConnections(const NetBenchRig& rig, uint64_t want,
                            int timeout_ms) {
  StopWatch watch;
  while (watch.ElapsedMillis() < timeout_ms) {
    if (rig.server->Stats().connections_active == want &&
        rig.service->InFlight() == 0) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

// ---------------------------------------------------------------- churn --

int RunChurn(bench::Json* doc, const SharedSubgraphOptions& workload) {
  const int threads = EnvInt("MOQO_NET_CHURN_THREADS", 4);
  const int conns = EnvInt("MOQO_NET_CHURN_CONNS", 16);
  NetBenchRig rig(workload, BaseServiceOptions(2));
  if (!rig.server->Start()) {
    std::printf("ERROR: churn server failed to start\n");
    return 1;
  }
  const uint16_t port = rig.server->port();

  std::atomic<int> failures{0};
  StopWatch watch;
  std::vector<std::thread> clients;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < conns; ++i) {
        BlockingNetClient client;
        if (!client.Connect("127.0.0.1", port)) {
          failures.fetch_add(1);
          continue;
        }
        OpenFrontierMsg open = InteractiveOpen(rig.QueryId(t * conns + i));
        open.quick_first = i % 2;
        if (!client.SendOpen(open)) failures.fetch_add(1);
        switch (i % 3) {
          case 0:
            client.Disconnect();
            break;
          case 1:
            client.SendCancel();
            client.Disconnect();
            break;
          default: {
            BlockingNetClient::Event event;
            if (!client.AwaitDone(&event, nullptr, 30000)) {
              failures.fetch_add(1);
            }
            client.SendClose();
            break;
          }
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  const double wall_ms = watch.ElapsedMillis();
  const bool drained = AwaitActiveConnections(rig, 0, 10000);
  const net::NetStatsSnapshot stats = rig.server->Stats();

  const int total = threads * conns;
  const double opens_per_s = wall_ms > 0 ? total / (wall_ms / 1000.0) : 0;
  std::printf("-- churn (%d threads x %d conns) --\n", threads, conns);
  std::printf("%d opens in %.1f ms (%.0f opens/s), protocol_errors=%llu, "
              "drained=%d\n",
              total, wall_ms, opens_per_s,
              static_cast<unsigned long long>(stats.protocol_errors),
              drained ? 1 : 0);
  bench::Json phase = bench::Json::Object();
  phase.Set("threads", threads)
      .Set("conns_per_thread", conns)
      .Set("wall_ms", wall_ms)
      .Set("opens_per_s", opens_per_s)
      .Set("accepted", static_cast<long long>(stats.connections_accepted))
      .Set("protocol_errors",
           static_cast<long long>(stats.protocol_errors));
  doc->Set("churn", std::move(phase));

  if (failures.load() != 0 || stats.protocol_errors != 0 ||
      stats.connections_accepted != static_cast<uint64_t>(total) ||
      !drained) {
    std::printf("ERROR: churn left failures=%d errors=%llu drained=%d\n",
                failures.load(),
                static_cast<unsigned long long>(stats.protocol_errors),
                drained ? 1 : 0);
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------- slow reader --

int RunSlowReader(bench::Json* doc, const SharedSubgraphOptions& workload) {
  NetOptions net_options;
  net_options.max_queued_pushes = 2;  // Tight, so stalls would show.
  NetBenchRig rig(workload, BaseServiceOptions(2), net_options);
  if (!rig.server->Start()) {
    std::printf("ERROR: slow-reader server failed to start\n");
    return 1;
  }
  const uint16_t port = rig.server->port();

  // The slow reader: opens a long ladder, then reads nothing.
  BlockingNetClient slow;
  if (!slow.Connect("127.0.0.1", port) ||
      !slow.SendOpen(RefinementOpen(rig.QueryId(0)))) {
    std::printf("ERROR: slow reader failed to open\n");
    return 1;
  }
  // The OPEN is processed asynchronously by the loop thread; wait until
  // the ladder is actually in flight before measuring around it.
  {
    StopWatch watch;
    while (rig.server->Stats().sessions_opened == 0 &&
           watch.ElapsedMillis() < 10000) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (rig.server->Stats().sessions_opened == 0) {
      std::printf("ERROR: slow reader's OPEN was never served\n");
      return 1;
    }
  }

  // Meanwhile a fast client keeps the event loop honest.
  std::vector<double> fast_ms;
  StopWatch ladder_watch;
  int fast_opens = 0;
  while (rig.service->InFlight() > 0 &&
         ladder_watch.ElapsedMillis() < 60000) {
    BlockingNetClient fast;
    StopWatch watch;
    BlockingNetClient::Event event;
    if (!fast.Connect("127.0.0.1", port) ||
        !fast.SendOpen(InteractiveOpen(rig.QueryId(++fast_opens))) ||
        !fast.AwaitDone(&event, nullptr, 30000)) {
      std::printf("ERROR: fast client starved during slow-reader stall\n");
      return 1;
    }
    fast_ms.push_back(watch.ElapsedMillis());
    fast.SendClose();
  }
  const double ladder_ms = ladder_watch.ElapsedMillis();

  // Now drain the slow reader's backlog: it must still end in DONE, with
  // whatever rungs newest-wins kept.
  int rungs_seen = 0;
  BlockingNetClient::Event event;
  if (!slow.AwaitDone(
          &event,
          [&](const FrontierUpdateMsg&) { ++rungs_seen; }, 30000)) {
    std::printf("ERROR: slow reader never received DONE\n");
    return 1;
  }
  slow.SendClose();
  slow.Disconnect();
  // Let the loop thread process the close before snapshotting: the queue
  // depth must return to zero once the connection is reaped.
  AwaitActiveConnections(rig, 0, 5000);
  const net::NetStatsSnapshot stats = rig.server->Stats();

  const double fast_p50 = SnapshotOfSamples(fast_ms).PercentileMs(50);
  std::printf("\n-- slow reader (max_queued_pushes=2) --\n");
  std::printf("ladder finished in %.1f ms while the reader slept; reader "
              "still saw %d rungs (%llu pushes dropped server-wide)\n",
              ladder_ms, rungs_seen,
              static_cast<unsigned long long>(stats.pushes_dropped));
  std::printf("fast client during stall: %d opens, p50 %.2f ms\n",
              fast_opens, fast_p50);
  bench::Json phase = bench::Json::Object();
  phase.Set("ladder_ms", ladder_ms)
      .Set("rungs_seen", rungs_seen)
      .Set("pushes_dropped", static_cast<long long>(stats.pushes_dropped))
      .Set("fast_opens_during_stall", fast_opens)
      .Set("fast_p50_ms", fast_p50)
      .Set("queue_depth_after", static_cast<long long>(
                                    stats.push_queue_depth));
  doc->Set("slow_reader", std::move(phase));

  if (rungs_seen < 1 || stats.push_queue_depth != 0) {
    std::printf("ERROR: slow reader saw %d rungs, residual queue depth "
                "%llu\n",
                rungs_seen,
                static_cast<unsigned long long>(stats.push_queue_depth));
    return 1;
  }
  return 0;
}

// --------------------------------------------------------- cancel storm --

int RunCancelStorm(bench::Json* doc, const SharedSubgraphOptions& workload) {
  const int threads = EnvInt("MOQO_NET_CHURN_THREADS", 4);
  const int conns = EnvInt("MOQO_NET_CHURN_CONNS", 16);
  NetBenchRig rig(workload, BaseServiceOptions(2));
  if (!rig.server->Start()) {
    std::printf("ERROR: cancel-storm server failed to start\n");
    return 1;
  }
  const uint16_t port = rig.server->port();

  std::atomic<int> failures{0};
  std::atomic<int> dones{0};
  StopWatch watch;
  std::vector<std::thread> clients;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < conns; ++i) {
        BlockingNetClient client;
        if (!client.Connect("127.0.0.1", port)) {
          failures.fetch_add(1);
          continue;
        }
        if (!client.SendOpen(RefinementOpen(rig.QueryId(t * conns + i))) ||
            !client.SendCancel()) {
          failures.fetch_add(1);
          continue;
        }
        BlockingNetClient::Event event;
        if (client.AwaitDone(&event, nullptr, 30000)) {
          dones.fetch_add(1);
        } else {
          failures.fetch_add(1);
        }
        client.SendClose();
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  const double wall_ms = watch.ElapsedMillis();
  const bool drained = AwaitActiveConnections(rig, 0, 10000);
  const net::NetStatsSnapshot stats = rig.server->Stats();

  const int total = threads * conns;
  std::printf("\n-- cancel storm (%d cancels) --\n", total);
  std::printf("%d/%d DONEs in %.1f ms, protocol_errors=%llu, drained=%d\n",
              dones.load(), total, wall_ms,
              static_cast<unsigned long long>(stats.protocol_errors),
              drained ? 1 : 0);
  bench::Json phase = bench::Json::Object();
  phase.Set("cancels", total)
      .Set("dones", dones.load())
      .Set("wall_ms", wall_ms)
      .Set("protocol_errors",
           static_cast<long long>(stats.protocol_errors));
  doc->Set("cancel_storm", std::move(phase));

  if (failures.load() != 0 || dones.load() != total ||
      stats.protocol_errors != 0 || !drained) {
    std::printf("ERROR: cancel storm failures=%d dones=%d/%d drained=%d\n",
                failures.load(), dones.load(), total, drained ? 1 : 0);
    return 1;
  }
  return 0;
}

// ------------------------------------------------------- mixed fairness --

struct FairnessResult {
  bool ok = false;
  double p50_ms = 0;
  double p99_ms = 0;
  int opens = 0;
  int rejects = 0;       ///< First-frontier opens rejected by admission.
  uint64_t sheds = 0;    ///< service-side refinement sheds.
  uint64_t client_sheds = 0;  ///< DONE frames with shed=1 at refiners.
};

/// One closed-loop scenario: `refiners` background clients hold long
/// ladders while `interactive` clients measure OPEN -> first frontier.
FairnessResult RunFairnessScenario(const SharedSubgraphOptions& workload,
                                   bool priority_admission, int refiners,
                                   int interactive, int opens_per_client) {
  FairnessResult result;
  ServiceOptions service_options = BaseServiceOptions(2);
  service_options.max_inflight = 8;
  service_options.refinement_shed_fraction = 0.5;
  service_options.priority_admission = priority_admission;
  NetBenchRig rig(workload, service_options);
  if (!rig.server->Start()) return result;
  const uint16_t port = rig.server->port();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> refiner_sheds{0};
  std::vector<std::thread> background;
  for (int r = 0; r < refiners; ++r) {
    background.emplace_back([&, r] {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        BlockingNetClient client;
        if (!client.Connect("127.0.0.1", port)) break;
        if (!client.SendOpen(RefinementOpen(rig.QueryId(r + i)))) break;
        BlockingNetClient::Event event;
        if (!client.AwaitDone(&event, nullptr, 60000)) break;
        if (event.done.shed) refiner_sheds.fetch_add(1);
        client.SendClose();
      }
    });
  }

  std::atomic<int> rejects{0};
  std::atomic<int> failures{0};
  std::mutex latencies_mu;
  std::vector<double> latencies;
  std::vector<std::thread> clients;
  for (int c = 0; c < interactive; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < opens_per_client; ++i) {
        BlockingNetClient client;
        StopWatch watch;
        if (!client.Connect("127.0.0.1", port) ||
            !client.SendOpen(
                InteractiveOpen(rig.QueryId(c * opens_per_client + i)))) {
          failures.fetch_add(1);
          continue;
        }
        // First FRONTIER_UPDATE is the measurement; a DONE first means
        // the open was rejected or failed before publishing.
        bool measured = false;
        BlockingNetClient::Event event;
        while (client.NextEvent(&event, 60000)) {
          if (event.type == MsgType::kFrontierUpdate) {
            latencies_mu.lock();
            latencies.push_back(watch.ElapsedMillis());
            latencies_mu.unlock();
            measured = true;
            break;
          }
          if (event.type == MsgType::kDone) {
            if (event.done.rejected) rejects.fetch_add(1);
            break;
          }
          if (event.type == MsgType::kError) break;
        }
        if (!measured && !event.done.rejected) failures.fetch_add(1);
        client.Disconnect();  // Server cancels the remainder.
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  stop.store(true);
  for (std::thread& thread : background) thread.join();
  AwaitActiveConnections(rig, 0, 10000);

  const HistogramSnapshot snapshot = SnapshotOfSamples(latencies);
  result.ok = failures.load() == 0 && !latencies.empty();
  result.p50_ms = snapshot.PercentileMs(50);
  result.p99_ms = snapshot.PercentileMs(99);
  result.opens = static_cast<int>(latencies.size());
  result.rejects = rejects.load();
  result.sheds = rig.service->Stats().refinement_sheds;
  result.client_sheds = refiner_sheds.load();
  return result;
}

bench::Json FairnessJson(const FairnessResult& result) {
  bench::Json json = bench::Json::Object();
  json.Set("first_frontier_p50_ms", result.p50_ms)
      .Set("first_frontier_p99_ms", result.p99_ms)
      .Set("opens_measured", result.opens)
      .Set("first_frontier_rejects", result.rejects)
      .Set("refinement_sheds", static_cast<long long>(result.sheds))
      .Set("refiner_shed_dones", static_cast<long long>(result.client_sheds));
  return json;
}

int RunFairness(bench::Json* doc, const SharedSubgraphOptions& workload) {
  const int refiners = EnvInt("MOQO_NET_REFINERS", 4);
  const int interactive = EnvInt("MOQO_NET_INTERACTIVE", 2);
  const int opens = EnvInt("MOQO_NET_OPENS", 15);

  std::printf("\n-- mixed fairness (%d refiners, %d interactive x %d "
              "opens) --\n",
              refiners, interactive, opens);
  const FairnessResult floor =
      RunFairnessScenario(workload, true, 0, interactive, opens);
  const FairnessResult fifo =
      RunFairnessScenario(workload, false, refiners, interactive, opens);
  const FairnessResult priority =
      RunFairnessScenario(workload, true, refiners, interactive, opens);
  if (!floor.ok || !fifo.ok || !priority.ok) {
    std::printf("ERROR: fairness scenario failed (floor=%d fifo=%d "
                "priority=%d)\n",
                floor.ok, fifo.ok, priority.ok);
    return 1;
  }

  std::printf("floor    (no load): p50 %7.2f ms  p99 %7.2f ms\n",
              floor.p50_ms, floor.p99_ms);
  std::printf("fifo     (loaded):  p50 %7.2f ms  p99 %7.2f ms  sheds=%llu "
              "rejects=%d\n",
              fifo.p50_ms, fifo.p99_ms,
              static_cast<unsigned long long>(fifo.sheds), fifo.rejects);
  std::printf("priority (loaded):  p50 %7.2f ms  p99 %7.2f ms  sheds=%llu "
              "rejects=%d\n",
              priority.p50_ms, priority.p99_ms,
              static_cast<unsigned long long>(priority.sheds),
              priority.rejects);
  const double improvement =
      priority.p99_ms > 0 ? fifo.p99_ms / priority.p99_ms : 0;
  std::printf("first-frontier p99: fifo/priority = %.2fx\n", improvement);

  bench::Json phase = bench::Json::Object();
  phase.Set("refiners", refiners)
      .Set("interactive_clients", interactive)
      .Set("opens_per_client", opens)
      .Set("floor", FairnessJson(floor))
      .Set("fifo", FairnessJson(fifo))
      .Set("priority", FairnessJson(priority))
      .Set("p99_improvement", improvement);
  doc->Set("fairness", std::move(phase));

  // Hard gates (acceptance criteria):
  // 1. Overload is absorbed by shedding refinement, never by rejecting
  //    first-frontier work.
  if (floor.rejects + fifo.rejects + priority.rejects != 0) {
    std::printf("ERROR: first-frontier opens were rejected (floor=%d "
                "fifo=%d priority=%d)\n",
                floor.rejects, fifo.rejects, priority.rejects);
    return 1;
  }
  if (priority.sheds == 0) {
    std::printf("ERROR: priority admission shed no refinement under "
                "overload\n");
    return 1;
  }
  if (fifo.sheds != 0) {
    std::printf("ERROR: FIFO config shed refinement (%llu) — admission "
                "leaked into the control run\n",
                static_cast<unsigned long long>(fifo.sheds));
    return 1;
  }
  // 2. Priority admission must not regress first-frontier p99 vs FIFO.
  //    (On dedicated hardware it wins clearly; noisy CI runners get 25%
  //    headroom before this counts as a regression.)
  if (priority.p99_ms > fifo.p99_ms * 1.25) {
    std::printf("ERROR: first-frontier p99 regressed under priority "
                "admission (%.2f ms vs fifo %.2f ms)\n",
                priority.p99_ms, fifo.p99_ms);
    return 1;
  }
  if (priority.p99_ms >= fifo.p99_ms) {
    std::printf("WARNING: priority p99 (%.2f ms) not below fifo p99 "
                "(%.2f ms) this run\n",
                priority.p99_ms, fifo.p99_ms);
  }
  return 0;
}

// --------------------------------------------------------- fault phase --

struct FaultMeasureResult {
  std::vector<double> healthy_ms;  ///< First-frontier, fault-free conns.
  int retried = 0;   ///< Opens that lost their connection and re-opened.
  int failures = 0;  ///< Opens that never reached a terminal outcome.
};

/// Closed-loop first-frontier measurement that survives injected faults:
/// an open whose connection dies mid-stream re-opens (capped retries) so
/// the session still reaches a terminal outcome, but only opens served on
/// a fault-free connection count toward the latency distribution — the
/// gate asks what faults elsewhere cost the *healthy* traffic.
FaultMeasureResult MeasureFirstFrontier(uint16_t port, NetBenchRig* rig,
                                        int clients, int opens_per_client) {
  FaultMeasureResult result;
  std::mutex mu;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < opens_per_client; ++i) {
        net::RetryOptions retry;
        retry.max_attempts = 4;
        retry.base_backoff_ms = 1;
        retry.max_backoff_ms = 20;
        retry.jitter_seed = 977u * static_cast<uint64_t>(c) + i;
        BlockingNetClient client;
        StopWatch watch;
        if (!client.ConnectWithRetry("127.0.0.1", port, retry)) {
          std::lock_guard<std::mutex> lock(mu);
          ++result.failures;
          continue;
        }
        bool sent = client.SendOpen(
            InteractiveOpen(rig->QueryId(c * opens_per_client + i)));
        bool measured = false;
        bool terminal = false;
        int attempt = 0;
        for (; attempt < 4; ++attempt) {
          if (attempt > 0 || !sent) {
            if (!client.Reopen(retry)) continue;
            watch.Restart();
          }
          BlockingNetClient::Event event;
          bool eof = true;
          while (client.NextEvent(&event, 30000)) {
            if (event.type == MsgType::kFrontierUpdate) {
              if (attempt == 0) {
                std::lock_guard<std::mutex> lock(mu);
                result.healthy_ms.push_back(watch.ElapsedMillis());
              }
              measured = true;
              terminal = true;  // First frontier in hand is the outcome.
              eof = false;
              break;
            }
            if (event.type == MsgType::kDone ||
                event.type == MsgType::kError) {
              terminal = true;
              eof = false;
              break;
            }
          }
          if (!eof) break;
          // Connection killed by an injected fault before any outcome.
        }
        client.Disconnect();
        std::lock_guard<std::mutex> lock(mu);
        if (attempt > 0) ++result.retried;
        if (!terminal && !measured) ++result.failures;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  return result;
}

int RunFaults(bench::Json* doc, const SharedSubgraphOptions& workload) {
  if (!rt::kFailpointsEnabled) {
    std::printf("\n-- fault phase skipped (MOQO_FAILPOINTS=OFF) --\n");
    bench::Json phase = bench::Json::Object();
    phase.Set("skipped", 1);
    doc->Set("faults", std::move(phase));
    return 0;
  }
  const int clients = EnvInt("MOQO_NET_INTERACTIVE", 2);
  const int opens = EnvInt("MOQO_NET_FAULT_OPENS", 40);
  std::printf("\n-- fault phase (%d clients x %d opens, 1%% read/write "
              "faults + forced reconnects) --\n",
              clients, opens);

  // Baseline and fault runs share one rig (cache off: every open is real
  // work) so the only variable is the injected faults.
  NetBenchRig rig(workload, BaseServiceOptions(2));
  if (!rig.server->Start()) {
    std::printf("ERROR: server start failed\n");
    return 1;
  }
  const uint16_t port = rig.server->port();

  // The same background load runs in BOTH phases — a churn thread of
  // forced reconnect cycles (abrupt disconnects mid-stream followed by
  // idempotent re-OPENs) — so the armed failpoints are the only variable
  // between the two measurements.
  std::atomic<bool> stop{false};
  const auto churn_main = [&] {
    for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      net::RetryOptions retry;
      retry.max_attempts = 2;
      retry.base_backoff_ms = 1;
      retry.jitter_seed = 31u + static_cast<uint64_t>(i);
      BlockingNetClient client;
      if (!client.ConnectWithRetry("127.0.0.1", port, retry)) continue;
      if (!client.SendOpen(RefinementOpen(rig.QueryId(i)))) continue;
      BlockingNetClient::Event event;
      client.NextEvent(&event, 5000);
      client.Disconnect();  // Abrupt: no CLOSE, stream still live.
      if (client.Reopen(retry)) client.NextEvent(&event, 5000);
    }
  };

  std::thread baseline_churn(churn_main);
  const FaultMeasureResult baseline =
      MeasureFirstFrontier(port, &rig, clients, opens);
  stop.store(true);
  baseline_churn.join();
  if (baseline.failures != 0 || baseline.healthy_ms.empty()) {
    std::printf("ERROR: fault-free baseline failed (%d failures)\n",
                baseline.failures);
    return 1;
  }

  // 1% of reads and writes fail, on a seeded schedule that replays.
  rt::FailpointRegistry::Global().Arm(
      "net.read", "probability(0.01,seed=11):return_error");
  rt::FailpointRegistry::Global().Arm(
      "net.write", "probability(0.01,seed=13):return_error");
  stop.store(false);
  std::thread fault_churn(churn_main);
  const FaultMeasureResult faulted =
      MeasureFirstFrontier(port, &rig, clients, opens);
  stop.store(true);
  fault_churn.join();
  const uint64_t read_hits =
      rt::FailpointRegistry::Global().Register("net.read").hits();
  const uint64_t write_hits =
      rt::FailpointRegistry::Global().Register("net.write").hits();
  rt::FailpointRegistry::Global().DisarmAll();
  const bool drained = AwaitActiveConnections(rig, 0, 10000);

  const double baseline_p99 =
      SnapshotOfSamples(baseline.healthy_ms).PercentileMs(99);
  const double fault_p99 =
      SnapshotOfSamples(faulted.healthy_ms).PercentileMs(99);
  const double ratio = baseline_p99 > 0 ? fault_p99 / baseline_p99 : 0;
  std::printf("fault-free p99 %7.2f ms   fault-phase healthy p99 %7.2f ms "
              "(%.2fx)\n",
              baseline_p99, fault_p99, ratio);
  std::printf("injected: %llu read, %llu write; retried opens=%d\n",
              static_cast<unsigned long long>(read_hits),
              static_cast<unsigned long long>(write_hits), faulted.retried);

  bench::Json phase = bench::Json::Object();
  phase.Set("clients", clients)
      .Set("opens_per_client", opens)
      .Set("baseline_p99_ms", baseline_p99)
      .Set("fault_p99_ms", fault_p99)
      .Set("p99_ratio", ratio)
      .Set("healthy_measured", static_cast<int>(faulted.healthy_ms.size()))
      .Set("retried_opens", faulted.retried)
      .Set("injected_read_errors", static_cast<long long>(read_hits))
      .Set("injected_write_errors", static_cast<long long>(write_hits));
  doc->Set("faults", std::move(phase));

  // Hard gates: faults must be contained — no lost sessions, a drained
  // server, and healthy-connection latency within 20% of fault-free.
  if (faulted.failures != 0) {
    std::printf("ERROR: %d opens never reached a terminal outcome under "
                "faults\n",
                faulted.failures);
    return 1;
  }
  if (!drained) {
    std::printf("ERROR: connections/in-flight sessions leaked after the "
                "fault phase\n");
    return 1;
  }
  if (fault_p99 > baseline_p99 * 1.2) {
    std::printf("ERROR: healthy-connection first-frontier p99 regressed "
                ">20%% under faults (%.2f ms vs %.2f ms)\n",
                fault_p99, baseline_p99);
    return 1;
  }
  return 0;
}

int Run() {
  SharedSubgraphOptions workload;
  workload.num_queries = EnvInt("MOQO_NET_QUERIES", 6);
  workload.tables_per_query = EnvInt("MOQO_NET_TABLES", 6);
  workload.num_objectives = 3;

  std::printf("== net front-end bench (%d queries x %d tables) ==\n\n",
              workload.num_queries, workload.tables_per_query);
  bench::Json doc = bench::Json::Object();
  doc.Set("bench", "net")
      .Set("queries", workload.num_queries)
      .Set("tables_per_query", workload.tables_per_query);

  if (RunChurn(&doc, workload) != 0) return 1;
  if (RunSlowReader(&doc, workload) != 0) return 1;
  if (RunCancelStorm(&doc, workload) != 0) return 1;
  if (RunFairness(&doc, workload) != 0) return 1;
  if (RunFaults(&doc, workload) != 0) return 1;

  const std::string path = "BENCH_net.json";
  if (!bench::WriteJsonFile(path, doc)) {
    std::printf("ERROR: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace moqo

int main() { return moqo::Run(); }
