// Reproduces Figure 7: analytic time-complexity comparison of the exact
// MOQO algorithm (EXA), the RTA approximation scheme with alpha = 1.05 and
// alpha = 1.5, and Selinger's single-objective algorithm, with the paper's
// parameters j = 6 operators, l = 3 objectives, m = 10^5 tuples.
//
// Expected shape: Selinger lowest; RTA curves are a polynomial factor
// above it; the EXA overtakes the RTA curves within a few tables and grows
// super-exponentially (the y-axis spans dozens of orders of magnitude).

#include <cstdio>

#include "core/complexity.h"

using namespace moqo;

int main() {
  const int j = 6, l = 3;
  const double m = 1e5;
  std::printf("Figure 7: analytic time complexity, log10(operations)\n"
              "(j=%d operators, l=%d objectives, m=%g tuples)\n\n", j, l, m);
  std::printf("%-8s %-12s %-14s %-14s %-12s\n", "tables", "EXA",
              "RTA(a=1.05)", "RTA(a=1.5)", "Selinger");
  for (int n = 2; n <= 10; ++n) {
    std::printf("%-8d %-12.2f %-14.2f %-14.2f %-12.2f\n", n,
                Log10ExaTime(j, n), Log10RtaTime(j, n, l, m, 1.05),
                Log10RtaTime(j, n, l, m, 1.5), Log10SelingerTime(j, n));
  }
  std::printf(
      "\nIRA iteration times (Theorem 7, alpha_U=1.5, n=6): log10 per "
      "iteration\n");
  for (int i = 1; i <= 8; ++i) {
    std::printf("  iteration %d: %.2f\n", i,
                Log10IraIterationTime(j, 6, l, m, 1.5, i));
  }
  std::printf("\npaper shape: EXA crosses above the RTA curves within a few "
              "tables\nand dwarfs them afterwards; Selinger stays lowest; "
              "IRA iteration\ncost doubles per iteration so the last "
              "iteration dominates.\n");
  return 0;
}
